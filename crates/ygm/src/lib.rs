//! # tripoll-ygm — asynchronous active-message runtime
//!
//! A Rust reproduction of **YGM** ("You've Got Mail"), the asynchronous
//! communication library underneath LLNL's TriPoll system (SC'21,
//! arXiv:2107.12330, §4.1). On a cluster YGM sits on MPI; here a *world*
//! of simulated ranks runs as threads inside one process, communicating
//! exclusively through serialized, buffered active messages — the same
//! programming model, with exact accounting of every byte that would have
//! crossed the network.
//!
//! ## The model
//!
//! * [`World::run`] launches an SPMD program: the same closure on every
//!   rank, differentiated only by [`Comm::rank`].
//! * [`Comm::register`] + [`Comm::send`] provide fire-and-forget RPC: a
//!   registered handler executes on the destination rank with the decoded
//!   payload. Handlers may send further messages.
//! * [`Comm::barrier`] is a quiescence barrier: it completes when all
//!   ranks arrived *and* no sent record anywhere remains unprocessed.
//! * [`wire::Wire`] is the serialization layer (the `cereal` stand-in):
//!   varint-packed, length-prefixed, allocation-checked decoding, with
//!   borrowed mirrors on both ends — [`wire::WireEncode`] for
//!   encode-once sends, [`wire::WireDecode`] views ([`wire::SeqCursor`]
//!   / [`wire::SeqView`] / [`wire::Lazy`]) for zero-copy receive via
//!   [`Comm::register_borrowed`], and a columnar (SoA) batch frame
//!   ([`wire::ColBatch`] / [`wire::encode_columns`] /
//!   [`wire::ColCursor`] / [`wire::ColView`]) whose key columns are
//!   walked during intersection while metadata decodes on match only.
//! * [`container`] offers the distributed map / counting set / bag that
//!   TriPoll's storage and surveys are built from.
//! * [`stats`] + [`cost`] expose per-rank traffic counters and an α-β-γ
//!   model that converts them into modeled cluster runtimes.
//!
//! ## Example
//!
//! ```
//! use tripoll_ygm::prelude::*;
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! // Four ranks; every rank greets every other rank.
//! let greetings: Vec<u64> = World::new(4).run(|comm| {
//!     let seen = Rc::new(Cell::new(0u64));
//!     let seen2 = seen.clone();
//!     let hello = comm.register::<String, _>(move |_c, _msg| {
//!         seen2.set(seen2.get() + 1);
//!     });
//!     for dest in 0..comm.nranks() {
//!         if dest != comm.rank() {
//!             comm.send(dest, &hello, &format!("hi from {}", comm.rank()));
//!         }
//!     }
//!     comm.barrier();
//!     seen.get()
//! });
//! assert_eq!(greetings, vec![3, 3, 3, 3]);
//! ```

#![deny(missing_docs)]

pub mod buffer;
pub mod collective;
pub mod comm;
pub mod container;
pub mod cost;
pub mod hash;
pub mod overlap;
pub mod quiesce;
pub mod stats;
pub mod wire;
pub mod world;

pub use comm::{Comm, CommConfig, Handler, Rank};
pub use cost::CostModel;
pub use stats::CommStats;
pub use world::{World, WorldOutput};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::comm::{Comm, CommConfig, Handler, Rank};
    pub use crate::container::{DistBag, DistCountingSet, DistMap};
    pub use crate::cost::CostModel;
    pub use crate::hash::{hash64, FastMap, FastSet};
    pub use crate::stats::CommStats;
    pub use crate::wire::{
        ColBatch, ColCursor, ColView, Lazy, SeqCursor, SeqView, Wire, WireDecode, WireEncode,
        WireError, WireReader,
    };
    pub use crate::world::{World, WorldOutput};
}
