//! The asynchronous communicator.
//!
//! [`Comm`] is the Rust analogue of YGM's `ygm::comm` (§4.1 of the paper):
//! a fire-and-forget active-message endpoint held by each rank of an SPMD
//! program. Its three pillars mirror the paper's description:
//!
//! * **RPC semantics** (§4.1.3): a message is a registered handler plus
//!   serialized arguments. YGM ships a lambda offset; our ranks share one
//!   binary and register the same handlers in the same order, so a small
//!   integer handler id plays the same role.
//! * **Message buffering** (§4.1.1): [`Comm::send`] appends to a
//!   per-destination [`SendBuffer`]; buffers move to the transport only
//!   when they cross the configured threshold or at a flush point.
//! * **Serialization** (§4.1.2): payloads are [`Wire`]-encoded bytes, so
//!   heterogeneous records (adjacency lists, strings, counter updates)
//!   interleave freely in one buffer.
//!
//! Completion is detected by a quiescence **barrier**: fire-and-forget
//! messages have no replies, so a phase ends when every rank has reached
//! the barrier *and* no record anywhere remains unprocessed. Handlers may
//! send further messages (the `visit`-chains of vertex-centric
//! algorithms); the pending-record counter makes such chains count toward
//! quiescence.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, SendBuffer};
use crate::overlap::DrainStage;
use crate::quiesce::Quiescence;
use crate::stats::RankCounters;
use crate::wire::{put_varint, varint_len, Wire, WireEncode, WireError, WireReader};

/// Index of a simulated MPI rank.
pub type Rank = usize;

/// Panic message used when a rank aborts because a peer panicked first.
/// The world driver filters these so the root-cause panic is the one that
/// propagates to the caller.
pub(crate) const POISON_MSG: &str = "peer rank panicked; aborting barrier";

/// Tuning knobs for the communicator.
#[derive(Debug, Clone)]
pub struct CommConfig {
    /// Buffer size (bytes) at which a destination buffer is shipped.
    ///
    /// `None` (the default) resolves **adaptively** at world
    /// construction into a *per-destination-class* policy derived from
    /// the cost model's α·β product: remote destinations get
    /// [`crate::cost::CostModel::adaptive_flush_threshold`] (scaled by
    /// the *node* count, from the tiny-world 8 KiB floor up to YGM's
    /// real-cluster ~MB buffers — a fixed threshold would degenerate
    /// into the §5.4 small-message blowup as the world grows), while
    /// same-node destinations flush at the shallow
    /// [`crate::cost::CostModel::local_flush_threshold`] (no `α` to
    /// amortize, so records reach local handlers sooner). `Some(bytes)`
    /// is the explicit override for **both** classes, used by tests and
    /// the ablation study.
    pub flush_threshold: Option<usize>,
    /// Simulated ranks per compute node for **node-level aggregation**
    /// (the §5.4 remedy for small-message blowup at scale: "extra
    /// aggregation of messages at the level of compute nodes").
    ///
    /// With a value > 1, buffers bound for the ranks of one remote node
    /// ship as a *single* bundled envelope to that node's gateway rank,
    /// which re-distributes the sections locally (free of network
    /// cost), and `send_to_many` fan-outs to co-node destinations
    /// encode their payload **once** on the wire as a multicast section
    /// the gateway expands. The default reads the `TRIPOLL_RPN`
    /// environment variable (CI reruns the suite with it set), falling
    /// back to `1` — every rank its own node, as in the paper's
    /// measured configuration.
    pub ranks_per_node: usize,
    /// Whether the transport handoff of a buffer flush runs on a
    /// dedicated per-rank transport worker (**overlapped flush**, see
    /// [`crate::overlap`]) instead of inline on the encode path.
    ///
    /// `None` (the default) reads the `TRIPOLL_OVERLAP` environment
    /// variable (`0`/`false`/`off` disable), falling back to **on**:
    /// encode and transport pipeline, and no observable counter or
    /// delivery semantics change either way. Single-rank worlds never
    /// spawn the worker.
    pub overlap_flush: Option<bool>,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            flush_threshold: None,
            ranks_per_node: env_ranks_per_node(),
            overlap_flush: None,
        }
    }
}

/// Resolves the default node width from `TRIPOLL_RPN` (min 1).
///
/// Read once per process and cached: a long-lived service must not see
/// its per-query defaults drift if something mutates the environment
/// mid-run. Queries that want a different width set
/// [`CommConfig::ranks_per_node`] explicitly (see [`CommConfig::pinned`]).
fn env_ranks_per_node() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("TRIPOLL_RPN")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(1, |v| v.max(1))
    })
}

/// Resolves the default overlapped-flush setting from `TRIPOLL_OVERLAP`.
fn env_overlap_flush() -> bool {
    match std::env::var("TRIPOLL_OVERLAP") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

impl CommConfig {
    /// The *remote-destination* threshold a world of `nranks` ranks will
    /// run with: the explicit override if set, otherwise the cost
    /// model's adaptive default (which scales with the node count under
    /// this config's `ranks_per_node`).
    pub fn effective_flush_threshold(&self, nranks: usize) -> usize {
        self.flush_threshold.unwrap_or_else(|| {
            crate::cost::CostModel::default().adaptive_flush_threshold(nranks, self.ranks_per_node)
        })
    }

    /// The *same-node-destination* threshold: the explicit override if
    /// set, otherwise the cost model's shallow local default.
    pub fn effective_local_flush_threshold(&self) -> usize {
        self.flush_threshold
            .unwrap_or_else(|| crate::cost::CostModel::default().local_flush_threshold())
    }

    /// Whether this config runs with the overlapped transport stage
    /// (explicit setting, or the `TRIPOLL_OVERLAP` default).
    pub fn effective_overlap_flush(&self) -> bool {
        self.overlap_flush.unwrap_or_else(env_overlap_flush)
    }

    /// Resolves every environment-dependent default into an explicit
    /// value, so the config's behavior no longer depends on when the
    /// environment is read. Resident services pin the config once at
    /// startup; each query then carries fully explicit settings.
    pub fn pinned(mut self) -> Self {
        self.overlap_flush = Some(self.effective_overlap_flush());
        // `ranks_per_node` was already resolved (via the cached env
        // read) when the config was constructed; `flush_threshold`
        // stays `None` deliberately — its adaptive default depends on
        // the per-query world size, not on the environment.
        self
    }
}

/// One tagged section of a node-level bundle.
pub(crate) enum Section {
    /// Records for one specific rank of the gateway's node.
    Direct(u32, Vec<u8>),
    /// Multicast records for *several* ranks of the gateway's node:
    /// a concatenation of `[ndests][offset]*ndests [len][record bytes]`
    /// frames (see [`SendBuffer::push_multicast`]), each payload
    /// appearing once on the wire. The gateway validates the framing
    /// structurally and expands it to per-rank record streams.
    Multicast(Vec<u8>),
}

/// One shipped message: the unit that would be a single MPI message.
pub(crate) enum Envelope {
    /// Records for the receiving rank itself.
    Direct(Vec<u8>),
    /// Node-level aggregate: tagged sections for the ranks of the
    /// gateway's node; the gateway re-distributes them.
    Bundle(Vec<Section>),
}

/// State shared by all ranks of a world.
pub(crate) struct Shared {
    pub(crate) nranks: usize,
    pub(crate) senders: Vec<Sender<Envelope>>,
    /// The pending-record counter and generation barrier (extracted so
    /// the shipping protocol runs under the model checker — see
    /// [`crate::quiesce`]).
    pub(crate) q: Quiescence,
    /// Per-rank communication counters.
    pub(crate) counters: Vec<RankCounters>,
    /// Scratch slots for collectives (one per rank).
    pub(crate) slots: Vec<Mutex<Vec<u8>>>,
}

impl Shared {
    pub(crate) fn new(nranks: usize, senders: Vec<Sender<Envelope>>) -> Self {
        Shared {
            nranks,
            senders,
            q: Quiescence::new(),
            counters: (0..nranks).map(|_| RankCounters::default()).collect(),
            slots: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

type DynHandler = Rc<dyn Fn(&Comm, &mut WireReader<'_>)>;

/// Typed identifier for a registered message handler.
///
/// Obtained from [`Comm::register`]; all ranks must register the same
/// handlers in the same order so that ids agree (the SPMD analogue of
/// YGM's sender/receiver lambda-offset agreement).
pub struct Handler<M> {
    id: u32,
    _marker: std::marker::PhantomData<fn(M)>,
}

impl<M> Clone for Handler<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Handler<M> {}

impl<M> Handler<M> {
    /// The raw handler id (diagnostics only).
    pub fn id(&self) -> u32 {
        self.id
    }
}

/// Per-rank communicator endpoint. Not `Send`: it lives and dies on its
/// rank's thread, like an MPI communicator handle.
pub struct Comm {
    rank: Rank,
    shared: Arc<Shared>,
    config: CommConfig,
    /// The remote-destination flush threshold, resolved against the
    /// world size at construction (adaptive unless overridden).
    flush_threshold: usize,
    /// The same-node-destination flush threshold (shallow adaptive
    /// default, or the same explicit override).
    local_flush_threshold: usize,
    rx: Receiver<Envelope>,
    outbufs: RefCell<Vec<SendBuffer>>,
    /// One multicast buffer per remote node (empty vec when
    /// `ranks_per_node == 1`): `send_to_many` appends a fan-out payload
    /// here **once** per destination node instead of once per rank.
    node_bufs: RefCell<Vec<SendBuffer>>,
    handlers: RefCell<Vec<DynHandler>>,
    /// Buffer tails whose next record's handler is not yet registered.
    deferred: RefCell<Vec<Vec<u8>>>,
    in_dispatch: Cell<bool>,
    /// Recycled envelope allocations: drained send buffers restart from
    /// vectors this rank has finished dispatching.
    pool: RefCell<BufferPool>,
    /// Scratch for `send_to_many`: one record is encoded here once, then
    /// memcpy'd (or multicast) into destination buffers.
    scratch: RefCell<Vec<u8>>,
    /// Scratch for `send_to_many`'s destination list (sorted for node
    /// run detection without allocating per call).
    dest_scratch: RefCell<Vec<Rank>>,
    /// Scratch for one multicast record's node-local offsets.
    offset_scratch: RefCell<Vec<u32>>,
    /// The overlapped transport stage and its worker thread; `None`
    /// when overlapped flush is off (or the world has one rank), in
    /// which case envelope handoff runs inline on the encode path.
    transport: Option<TransportWorker>,
    /// Invoked while this rank spins in `barrier()`: lets an engine
    /// drain work it deferred past handler return (see `defer_work`).
    /// Returns true if it made progress.
    drain_hook: RefCell<Option<DrainHook>>,
}

/// The overlapped-flush transport worker: a [`DrainStage`] the encode
/// path pushes `(dest, envelope)` pairs into, drained by a dedicated
/// thread that performs the channel sends. Joined on `Comm` drop after
/// a stage shutdown, so no envelope is ever lost. See
/// [`crate::overlap`] for the protocol and its quiescence argument.
struct TransportWorker {
    stage: Arc<DrainStage<(Rank, Envelope)>>,
    handle: Option<tripoll_sync::thread::JoinHandle<()>>,
}

/// A barrier-spin progress callback (see [`Comm::set_drain_hook`]).
type DrainHook = Rc<dyn Fn(&Comm) -> bool>;

/// Drained send-buffer vectors retained per rank. Bounds pooled memory
/// near `POOL_BUFFERS × flush_threshold` while covering the steady-state
/// envelope flow of a phase.
const POOL_BUFFERS: usize = 32;

impl Comm {
    pub(crate) fn new(
        rank: Rank,
        shared: Arc<Shared>,
        config: CommConfig,
        rx: Receiver<Envelope>,
    ) -> Self {
        let nranks = shared.nranks;
        let flush_threshold = config.effective_flush_threshold(nranks);
        let local_flush_threshold = config.effective_local_flush_threshold();
        // A buffer flushes shortly past the threshold, so anything much
        // larger is a one-off oversized record — not worth keeping
        // resident. 4x leaves slack for big trailing records.
        let pool_buffer_cap = flush_threshold.saturating_mul(4).max(64 * 1024);
        let rpn = config.ranks_per_node.max(1);
        let nnodes = if rpn > 1 { nranks.div_ceil(rpn) } else { 0 };
        let transport = if config.effective_overlap_flush() && nranks > 1 {
            let stage = Arc::new(DrainStage::new());
            let worker_stage = Arc::clone(&stage);
            let senders = shared.senders.clone();
            let handle = tripoll_sync::thread::Builder::new()
                .name(format!("tripoll-transport-{rank}"))
                .spawn(move || {
                    worker_stage.worker_loop(|(dest, env): (Rank, Envelope)| {
                        // A failed send means the receiver already tore
                        // down — only possible on the poisoned-abort
                        // path, where dropping the envelope is correct
                        // (the root-cause panic is already propagating).
                        let _ = senders[dest].send(env);
                    });
                })
                .expect("spawn transport worker");
            Some(TransportWorker {
                stage,
                handle: Some(handle),
            })
        } else {
            None
        };
        Comm {
            rank,
            shared,
            config,
            flush_threshold,
            local_flush_threshold,
            rx,
            outbufs: RefCell::new((0..nranks).map(|_| SendBuffer::new()).collect()),
            node_bufs: RefCell::new((0..nnodes).map(|_| SendBuffer::new()).collect()),
            handlers: RefCell::new(Vec::new()),
            deferred: RefCell::new(Vec::new()),
            in_dispatch: Cell::new(false),
            pool: RefCell::new(BufferPool::new(POOL_BUFFERS, pool_buffer_cap)),
            scratch: RefCell::new(Vec::new()),
            dest_scratch: RefCell::new(Vec::new()),
            offset_scratch: RefCell::new(Vec::new()),
            transport,
            drain_hook: RefCell::new(None),
        }
    }

    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// The communicator configuration in effect.
    pub fn config(&self) -> &CommConfig {
        &self.config
    }

    /// The *remote-destination* flush threshold this world runs with
    /// (adaptive default resolved, or the explicit override).
    #[inline]
    pub fn flush_threshold(&self) -> usize {
        self.flush_threshold
    }

    /// The *same-node-destination* flush threshold (shallow adaptive
    /// default resolved, or the same explicit override). Same-node
    /// buffers pay no per-message latency, so they flush earlier.
    #[inline]
    pub fn local_flush_threshold(&self) -> usize {
        self.local_flush_threshold
    }

    /// The flush threshold applying to one destination rank under the
    /// per-destination policy.
    #[inline]
    fn threshold_for(&self, dest: Rank) -> usize {
        if self.node_of(dest) == self.node_of(self.rank) {
            self.local_flush_threshold
        } else {
            self.flush_threshold
        }
    }

    /// Live counters for this rank.
    #[inline]
    pub fn counters(&self) -> &RankCounters {
        &self.shared.counters[self.rank]
    }

    /// Snapshot of this rank's communication statistics.
    pub fn stats(&self) -> crate::stats::CommStats {
        self.counters().snapshot()
    }

    /// Records `units` of application compute (e.g. wedge-check
    /// comparisons). The cost model prices these as the compute term of
    /// modeled runtimes; wall-clock is unaffected.
    #[inline]
    pub fn add_work(&self, units: u64) {
        self.counters().work.fetch_add(units, Ordering::Relaxed);
    }

    /// Registers a message handler and returns its typed id.
    ///
    /// Must be called collectively: every rank registers the same handlers
    /// in the same order (debug builds verify ids stay in lockstep via the
    /// returned id; a mismatch shows up as decode failures immediately).
    pub fn register<M, F>(&self, f: F) -> Handler<M>
    where
        M: Wire + 'static,
        F: Fn(&Comm, M) + 'static,
    {
        let mut handlers = self.handlers.borrow_mut();
        let id = u32::try_from(handlers.len()).expect("handler id overflow");
        handlers.push(Rc::new(move |comm: &Comm, r: &mut WireReader<'_>| {
            let msg = M::decode(r).unwrap_or_else(|e| {
                panic!(
                    "rank {}: failed to decode message for handler {id}: {e}",
                    comm.rank()
                )
            });
            f(comm, msg);
        }));
        Handler {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers a handler that decodes its message **in place** from
    /// the receive buffer — the zero-copy receive path, mirror of the
    /// encode-once sends.
    ///
    /// The closure receives the envelope's [`WireReader`] positioned at
    /// the start of one `M`-encoded record and must consume **exactly**
    /// that record's bytes (use [`crate::wire::SeqCursor`] /
    /// [`crate::wire::SeqView`] / [`crate::wire::Lazy`] to walk
    /// sequences without materializing them; `SeqCursor::skip_rest`
    /// restores the record boundary after an early exit). Returning an
    /// error aborts the rank like a failed owned decode would.
    ///
    /// Sends target it exactly like an owned handler: `M` is the wire
    /// type the senders encode (or match via [`WireEncode`]). Must be
    /// registered collectively, in the same order on every rank.
    pub fn register_borrowed<M, F>(&self, f: F) -> Handler<M>
    where
        M: Wire + 'static,
        F: Fn(&Comm, &mut WireReader<'_>) -> Result<(), WireError> + 'static,
    {
        let mut handlers = self.handlers.borrow_mut();
        let id = u32::try_from(handlers.len()).expect("handler id overflow");
        handlers.push(Rc::new(move |comm: &Comm, r: &mut WireReader<'_>| {
            let start = r.position();
            if let Err(e) = f(comm, r) {
                panic!(
                    "rank {}: failed to decode message in place for handler {id}: {e}",
                    comm.rank()
                );
            }
            let counters = comm.counters();
            counters.records_borrowed.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_decoded_in_place
                .fetch_add((r.position() - start) as u64, Ordering::Relaxed);
        }));
        Handler {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Aborts the world with a structured reason: peers are poisoned
    /// out of their barriers promptly (instead of waiting for this
    /// rank's unwind to reach the world driver), and the driver
    /// re-raises this message — not the peers' secondary aborts — as
    /// the root cause.
    pub fn abort(&self, reason: impl std::fmt::Display) -> ! {
        let msg = format!("rank {} aborted: {reason}", self.rank);
        self.shared.q.poison();
        panic!("{msg}");
    }

    /// Sends `msg` to be executed by handler `h` on rank `dest`
    /// (fire-and-forget, buffered).
    #[inline]
    pub fn send<M: Wire>(&self, dest: Rank, h: &Handler<M>, msg: &M) {
        self.send_encoded(dest, h, msg);
    }

    /// Sends a record whose payload is appended by a [`WireEncode`]
    /// value — the encode-once path. `enc`'s byte image must match the
    /// handler's message type `M` (see the `wire` module docs); borrowed
    /// tuples and [`crate::wire::encode_seq`] projections serialize
    /// straight from application storage with no intermediate `M`.
    pub fn send_encoded<M: Wire, E: WireEncode>(&self, dest: Rank, h: &Handler<M>, enc: E) {
        debug_assert!(
            dest < self.nranks(),
            "send to rank {dest} of {}",
            self.nranks()
        );
        // Count the record as pending *before* it becomes visible anywhere,
        // so the quiescence barrier can never observe a transient zero.
        // (Ordering rationale lives on `Quiescence::record_sent`.)
        self.shared.q.record_sent();

        let counters = self.counters();
        let ship = {
            let mut bufs = self.outbufs.borrow_mut();
            let buf = &mut bufs[dest];
            let bytes = buf.push_record_with(h.id, |out| enc.encode_wire(out));
            counters.records_encoded.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_encoded
                .fetch_add(bytes as u64, Ordering::Relaxed);
            // "Local" means it never touches the network: self-sends
            // always, and intra-node peers when node aggregation models
            // multiple ranks per node.
            if self.node_of(dest) == self.node_of(self.rank) {
                counters.records_local.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_local
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                counters.records_remote.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_remote
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            }
            if buf.should_flush(self.threshold_for(dest)) {
                Some(self.drain_pooled(buf))
            } else {
                None
            }
        };
        if let Some((data, _records)) = ship {
            self.ship(dest, data);
        }
    }

    /// Sends one record to several destinations: the payload is encoded
    /// **once** into scratch, then fanned out. This is the §4.4
    /// pull-delivery pattern — one `Adjm+(q)` projection fanned out to
    /// every granted rank — without re-serializing (or
    /// re-materializing) the projection per rank.
    ///
    /// Fan-out is node-aware: with `ranks_per_node > 1`, destinations
    /// sharing a *remote* node receive the payload through a single
    /// multicast frame in that node's bundle section — the bytes go on
    /// the wire once, with a compact destination-set header, and the
    /// node's gateway expands them locally. Other destinations (local
    /// peers, lone remote ranks) get a per-rank memcpy as before.
    ///
    /// Counter contract: each destination is accounted a full record;
    /// `bytes_remote`/`bytes_local` reflect the *actual wire bytes*
    /// (so a multicast shrinks `bytes_remote`), with the forgone copy
    /// volume in `multicast_bytes_saved` and the deliveries served by
    /// multicast in `records_multicast`. `records_encoded` rises by one
    /// and `bytes_encoded` by one record's bytes.
    pub fn send_to_many<M, E, I>(&self, dests: I, h: &Handler<M>, enc: E)
    where
        M: Wire,
        E: WireEncode,
        I: IntoIterator<Item = Rank>,
    {
        let mut dest_scratch = self.dest_scratch.borrow_mut();
        dest_scratch.clear();
        dest_scratch.extend(dests);
        if dest_scratch.is_empty() {
            return;
        }
        if cfg!(debug_assertions) {
            for &dest in dest_scratch.iter() {
                debug_assert!(
                    dest < self.nranks(),
                    "send to rank {dest} of {}",
                    self.nranks()
                );
            }
        }

        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        put_varint(&mut scratch, u64::from(h.id));
        enc.encode_wire(&mut scratch);

        let counters = self.counters();
        // One encode serves every destination; the rest are copies (or
        // one multicast frame per destination node).
        counters.records_encoded.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_encoded
            .fetch_add(scratch.len() as u64, Ordering::Relaxed);

        let rpn = self.config.ranks_per_node.max(1);
        if rpn > 1 {
            // Group destinations into node runs. Callers' lists carry
            // no semantic order (fire-and-forget deliveries), so the
            // sort is free to reorder them.
            dest_scratch.sort_unstable();
        }
        let my_node = self.node_of(self.rank);
        let mut i = 0;
        while i < dest_scratch.len() {
            let node = self.node_of(dest_scratch[i]);
            let mut j = i + 1;
            while j < dest_scratch.len() && self.node_of(dest_scratch[j]) == node {
                j += 1;
            }
            let run = &dest_scratch[i..j];
            // Sorted + strictly increasing ⇒ no duplicate destinations
            // (a duplicated rank must get two deliveries, which one
            // destination-set header cannot express).
            let unique = run.windows(2).all(|w| w[0] < w[1]);
            if rpn > 1 && node != my_node && run.len() >= 2 && unique {
                self.multicast_to_node(node, run, &scratch);
            } else {
                for &dest in run {
                    self.fanout_unicast(dest, &scratch);
                }
            }
            i = j;
        }
    }

    /// One `send_to_many` delivery via the per-rank memcpy path.
    fn fanout_unicast(&self, dest: Rank, record: &[u8]) {
        let counters = self.counters();
        // Same pre-visibility argument as `send_encoded`.
        self.shared.q.record_sent();
        let ship = {
            let mut bufs = self.outbufs.borrow_mut();
            let buf = &mut bufs[dest];
            let bytes = buf.push_raw(record);
            if self.node_of(dest) == self.node_of(self.rank) {
                counters.records_local.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_local
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                counters.records_remote.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_remote
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            }
            if buf.should_flush(self.threshold_for(dest)) {
                Some(self.drain_pooled(buf))
            } else {
                None
            }
        };
        if let Some((data, _records)) = ship {
            self.ship(dest, data);
        }
    }

    /// One `send_to_many` run of co-node remote destinations, delivered
    /// through the node's multicast buffer: the record goes on the wire
    /// once with a destination-set header. Falls back to per-rank
    /// copies when the header would not pay for itself (tiny records to
    /// few destinations).
    fn multicast_to_node(&self, node: usize, run: &[Rank], record: &[u8]) {
        let k = run.len();
        let lo = self.gateway_of(node);
        let mut offsets = self.offset_scratch.borrow_mut();
        offsets.clear();
        offsets.extend(run.iter().map(|&d| (d - lo) as u32));
        // Exact frame overhead: [ndests][offset]*k [len] varints.
        let header: usize = varint_len(k as u64)
            + offsets
                .iter()
                .map(|&o| varint_len(u64::from(o)))
                .sum::<usize>()
            + varint_len(record.len() as u64);
        if header + record.len() >= k * record.len() {
            // Copies are cheaper (or equal): k tiny records cost less
            // than one header + payload.
            drop(offsets);
            for &dest in run {
                self.fanout_unicast(dest, record);
            }
            return;
        }
        let counters = self.counters();
        // One pending record per *delivery*, raised before the frame
        // becomes visible — same pre-visibility argument as
        // `send_encoded`, applied k times.
        for _ in 0..k {
            self.shared.q.record_sent();
        }
        let ship = {
            let mut node_bufs = self.node_bufs.borrow_mut();
            let buf = &mut node_bufs[node];
            let bytes = buf.push_multicast(&offsets, record);
            debug_assert_eq!(bytes, header + record.len());
            counters
                .records_remote
                .fetch_add(k as u64, Ordering::Relaxed);
            counters
                .bytes_remote
                .fetch_add(bytes as u64, Ordering::Relaxed);
            counters
                .records_multicast
                .fetch_add(k as u64, Ordering::Relaxed);
            counters
                .multicast_bytes_saved
                .fetch_add((k * record.len() - bytes) as u64, Ordering::Relaxed);
            if buf.should_flush(self.flush_threshold) {
                Some(self.drain_pooled(buf))
            } else {
                None
            }
        };
        if let Some((data, _records)) = ship {
            self.counters()
                .envelopes_remote
                .fetch_add(1, Ordering::Relaxed);
            self.send_envelope(
                self.gateway_of(node),
                Envelope::Bundle(vec![Section::Multicast(data)]),
            );
        }
    }

    /// Drains `buf`, restarting it from the recycled-allocation pool.
    #[inline]
    fn drain_pooled(&self, buf: &mut SendBuffer) -> (Vec<u8>, u64) {
        let mut pool = self.pool.borrow_mut();
        let before = pool.reuses();
        let out = buf.drain_pooled(&mut pool);
        if pool.reuses() > before {
            self.counters().pool_reuses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Compute node of a rank under the configured node width.
    #[inline]
    fn node_of(&self, rank: Rank) -> usize {
        rank / self.config.ranks_per_node.max(1)
    }

    /// The rank that receives bundled envelopes for a node.
    #[inline]
    fn gateway_of(&self, node: usize) -> Rank {
        node * self.config.ranks_per_node.max(1)
    }

    /// Hands one envelope to the transport: through the overlapped
    /// drain stage when it is active (so the channel send runs on the
    /// transport worker, off the encode path), inline otherwise.
    /// Self-sends always go inline — they land in this rank's own
    /// receive queue, so there is nothing to overlap.
    fn send_envelope(&self, dest: Rank, env: Envelope) {
        if dest != self.rank {
            if let Some(t) = &self.transport {
                t.stage.push((dest, env));
                return;
            }
        }
        self.shared.senders[dest]
            .send(env)
            .expect("receiver alive while world is running");
    }

    /// Ships one drained buffer to `dest`, via the destination node's
    /// gateway when node-level aggregation is active.
    fn ship(&self, dest: Rank, data: Vec<u8>) {
        let counters = self.counters();
        if dest == self.rank {
            counters.envelopes_local.fetch_add(1, Ordering::Relaxed);
            self.send_envelope(dest, Envelope::Direct(data));
            return;
        }
        if self.config.ranks_per_node > 1 && self.node_of(dest) != self.node_of(self.rank) {
            // A lone over-threshold buffer still travels as a (single
            // section) bundle so the gateway accounting stays uniform.
            let gateway = self.gateway_of(self.node_of(dest));
            counters.envelopes_remote.fetch_add(1, Ordering::Relaxed);
            self.send_envelope(
                gateway,
                Envelope::Bundle(vec![Section::Direct(dest as u32, data)]),
            );
            return;
        }
        if self.node_of(dest) == self.node_of(self.rank) {
            counters.envelopes_local.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.envelopes_remote.fetch_add(1, Ordering::Relaxed);
        }
        self.send_envelope(dest, Envelope::Direct(data));
    }

    /// Flushes every non-empty destination buffer to the transport.
    ///
    /// One loop over node sections covers every configuration. Buffers
    /// for this rank's own node (which, with `ranks_per_node == 1`, is
    /// just this rank) and for any single-rank node ship as direct
    /// envelopes; with node-level aggregation, all buffers bound for one
    /// remote multi-rank node leave as a *single* bundled envelope to
    /// that node's gateway — the envelope-count reduction the paper
    /// prescribes for the 6144-rank regime (§5.4).
    pub fn flush_all(&self) {
        let rpn = self.config.ranks_per_node.max(1);
        let nnodes = self.nranks().div_ceil(rpn);
        let my_node = self.node_of(self.rank);
        for node in 0..nnodes {
            let lo = node * rpn;
            let hi = ((node + 1) * rpn).min(self.nranks());
            if rpn == 1 || node == my_node {
                // Direct delivery: every rank of this section gets its
                // own envelope. `ship` classifies local vs remote and
                // handles the (rpn > 1, foreign node) single-buffer
                // bundle case — unreachable here since that is the
                // aggregated branch below.
                for dest in lo..hi {
                    let drained = {
                        let mut bufs = self.outbufs.borrow_mut();
                        if bufs[dest].is_empty() {
                            None
                        } else {
                            Some(self.drain_pooled(&mut bufs[dest]))
                        }
                    };
                    if let Some((data, _records)) = drained {
                        self.ship(dest, data);
                    }
                }
                continue;
            }
            // Remote multi-rank node: bundle every non-empty per-rank
            // section plus the node's multicast section into one
            // envelope for the node's gateway.
            let sections: Vec<Section> = {
                let mut bufs = self.outbufs.borrow_mut();
                let mut sections = Vec::new();
                for d in lo..hi {
                    if !bufs[d].is_empty() {
                        sections.push(Section::Direct(d as u32, self.drain_pooled(&mut bufs[d]).0));
                    }
                }
                drop(bufs);
                let mut node_bufs = self.node_bufs.borrow_mut();
                if !node_bufs[node].is_empty() {
                    sections.push(Section::Multicast(
                        self.drain_pooled(&mut node_bufs[node]).0,
                    ));
                }
                sections
            };
            if !sections.is_empty() {
                self.counters()
                    .envelopes_remote
                    .fetch_add(1, Ordering::Relaxed);
                self.send_envelope(self.gateway_of(node), Envelope::Bundle(sections));
            }
        }
    }

    /// Processes every envelope currently queued for this rank.
    ///
    /// Returns `true` if at least one record was executed. Handlers run
    /// here; they may send further messages (which stay buffered until the
    /// next flush point).
    ///
    /// Records whose handler id this rank has not registered *yet* are
    /// deferred, not failed: in an SPMD program a fast peer may exit a
    /// barrier, register the next phase's handlers and start sending
    /// while this rank is still spinning in that barrier. The deferred
    /// bytes stay counted in the pending-record total (so no barrier can
    /// release past them) and are retried on the next poll, by which time
    /// this rank's own registrations have caught up.
    pub fn poll(&self) -> bool {
        let mut worked = false;
        // Retry deferred tails first: registrations may have caught up.
        let deferred: Vec<Vec<u8>> = self.deferred.borrow_mut().drain(..).collect();
        for data in deferred {
            worked |= self.dispatch_bytes(data);
        }
        while let Ok(env) = self.rx.try_recv() {
            match env {
                Envelope::Direct(data) => worked |= self.dispatch_bytes(data),
                Envelope::Bundle(sections) => {
                    // Gateway duty: keep our own sections, forward the
                    // rest over the (free) intra-node transport, and
                    // expand multicast sections to per-rank streams.
                    for section in sections {
                        match section {
                            Section::Direct(dest, data) => {
                                let dest = dest as usize;
                                if dest == self.rank {
                                    worked |= self.dispatch_bytes(data);
                                } else {
                                    debug_assert_eq!(
                                        self.node_of(dest),
                                        self.node_of(self.rank),
                                        "bundle section for a foreign node"
                                    );
                                    self.counters()
                                        .envelopes_local
                                        .fetch_add(1, Ordering::Relaxed);
                                    self.shared.senders[dest]
                                        .send(Envelope::Direct(data))
                                        .expect("receiver alive while world is running");
                                    worked = true;
                                }
                            }
                            Section::Multicast(data) => {
                                worked |= self.expand_multicast(data);
                            }
                        }
                    }
                }
            }
        }
        worked
    }

    /// Dispatches the records of one buffer; returns whether at least one
    /// record was executed. A *not-yet-registered* handler id defers the
    /// rest of the buffer (records within a buffer stay in order); a
    /// handler id that cannot decode or can never be valid — handler ids
    /// are `u32` by construction, see [`Comm::register`] — is a corrupt
    /// envelope and aborts the world structurally instead of panicking
    /// (or worse, deferring forever).
    fn dispatch_bytes(&self, data: Vec<u8>) -> bool {
        let was = self.in_dispatch.replace(true);
        let mut executed = false;
        let mut reader = WireReader::new(&data);
        while !reader.is_empty() {
            let record_start = reader.position();
            let hid = match reader.take_varint() {
                Ok(id) => id,
                Err(e) => self.abort(format_args!("corrupt envelope: handler id: {e:?}")),
            };
            if hid > u32::MAX as u64 {
                self.abort(format_args!(
                    "corrupt envelope: handler id {hid} exceeds the u32 handler-id space"
                ));
            }
            let hid = hid as usize;
            let handler = {
                let handlers = self.handlers.borrow();
                handlers.get(hid).cloned()
            };
            let Some(handler) = handler else {
                // Not registered yet on this rank: defer the remainder.
                self.deferred
                    .borrow_mut()
                    .push(data[record_start..].to_vec());
                break;
            };
            handler(self, &mut reader);
            executed = true;
            self.counters().handlers_run.fetch_add(1, Ordering::Relaxed);
            // The decrement's Release half is what lets a barrier that
            // reads 0 synchronize with this record's execution — see
            // `Quiescence::record_done`.
            self.shared.q.record_done();
        }
        self.in_dispatch.set(was);
        // Recycle the envelope allocation into this rank's send pool:
        // steady-state flushes then restart from received capacity
        // instead of the allocator.
        self.pool.borrow_mut().put(data);
        executed
    }

    /// Gateway expansion of one multicast section: validates the whole
    /// section **structurally before any handler runs** (every frame's
    /// destination set and length prefix), copies each record into a
    /// per-rank stream, then dispatches this rank's stream and forwards
    /// the rest over the free intra-node transport. Any framing defect
    /// — truncation, empty or non-increasing destination set, an offset
    /// outside this node's rank range, a length prefix past the buffer
    /// — aborts the world with the structural [`WireError`] as the root
    /// cause; handler code never sees bytes from a corrupt section.
    fn expand_multicast(&self, data: Vec<u8>) -> bool {
        let rpn = self.config.ranks_per_node.max(1);
        let lo = self.gateway_of(self.node_of(self.rank));
        let width = rpn.min(self.nranks() - lo);
        debug_assert_eq!(lo, self.rank, "multicast section not at the gateway");
        // Per-offset expansion streams, built from recycled envelope
        // allocations. An offset's stream is created lazily on its
        // first record.
        let mut streams: Vec<Option<Vec<u8>>> = Vec::with_capacity(width);
        streams.resize_with(width, || None);
        let mut offsets = self.offset_scratch.borrow_mut();
        let mut r = WireReader::new(&data);
        let walk = (|| -> Result<(), WireError> {
            while !r.is_empty() {
                let ndests = r.take_varint()?;
                if ndests == 0 || ndests > width as u64 {
                    return Err(WireError::BadDestSet {
                        value: ndests,
                        node_width: width,
                    });
                }
                offsets.clear();
                let mut prev: Option<u64> = None;
                for _ in 0..ndests {
                    let off = r.take_varint()?;
                    if off >= width as u64 || prev.is_some_and(|p| off <= p) {
                        return Err(WireError::BadDestSet {
                            value: off,
                            node_width: width,
                        });
                    }
                    prev = Some(off);
                    offsets.push(off as u32);
                }
                let len = r.take_varint()?;
                if len > r.remaining() as u64 {
                    return Err(WireError::SeqOverrun {
                        claimed: len,
                        remaining: r.remaining(),
                    });
                }
                let record = r.take(len as usize)?;
                for &off in offsets.iter() {
                    let stream =
                        streams[off as usize].get_or_insert_with(|| self.pool.borrow_mut().take());
                    stream.extend_from_slice(record);
                }
            }
            Ok(())
        })();
        drop(offsets);
        if let Err(e) = walk {
            self.abort(format_args!("corrupt multicast section: {e}"));
        }
        self.pool.borrow_mut().put(data);
        let mut worked = false;
        let mut own: Option<Vec<u8>> = None;
        for (off, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            if lo + off == self.rank {
                // Defer our own stream so forwards leave first: peers
                // start their (possibly long) dispatch sooner.
                own = Some(stream);
            } else {
                self.counters()
                    .envelopes_local
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.senders[lo + off]
                    .send(Envelope::Direct(stream))
                    .expect("receiver alive while world is running");
                worked = true;
            }
        }
        if let Some(own) = own {
            worked |= self.dispatch_bytes(own);
        }
        worked
    }

    /// Quiescence barrier (YGM `comm.barrier()`).
    ///
    /// Completes only when **all** ranks have entered the barrier **and**
    /// every sent record — including records sent by handlers while ranks
    /// were already waiting — has been executed. Must not be called from
    /// inside a message handler.
    pub fn barrier(&self) {
        assert!(
            !self.in_dispatch.get(),
            "barrier() may not be called from inside a message handler"
        );
        self.flush_all();
        // The rendezvous itself lives in `Quiescence::barrier`; this
        // closure is one poll-and-drain progress step, flushing any
        // sends the drained work produced.
        self.shared.q.barrier(self.nranks(), || {
            self.check_poison();
            if self.poll() | self.run_drain_hook() {
                self.flush_all();
                true
            } else {
                false
            }
        });
        self.counters().barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the barrier drain hook. The hook runs on this rank's
    /// thread whenever the rank spins inside `barrier()`; it should
    /// drain any engine-side deferred work (typically paired with
    /// [`Comm::defer_work`]) and return true if it made progress, in
    /// which case the barrier flushes any sends the drained work
    /// produced and keeps polling. Replaces any previous hook.
    pub fn set_drain_hook(&self, hook: impl Fn(&Comm) -> bool + 'static) {
        *self.drain_hook.borrow_mut() = Some(Rc::new(hook));
    }

    /// Removes the barrier drain hook, if any.
    pub fn clear_drain_hook(&self) {
        *self.drain_hook.borrow_mut() = None;
    }

    fn run_drain_hook(&self) -> bool {
        // Cloned out of the RefCell so the hook itself may install or
        // clear hooks without re-entrant borrow panics.
        let hook = self.drain_hook.borrow().clone();
        match hook {
            Some(hook) => hook(self),
            None => false,
        }
    }

    /// Counts one unit of engine-deferred work against the quiescence
    /// barrier, exactly as an in-flight record would be counted: no
    /// barrier releases until [`Comm::deferred_done`] balances it.
    /// Engines that queue decoded work past handler return (e.g. the
    /// parallel merge path) pair this with a drain hook so the barrier
    /// both waits for and actively drains the queue.
    pub fn defer_work(&self) {
        self.shared.q.record_sent();
    }

    /// Balances one [`Comm::defer_work`] after the deferred unit has
    /// fully executed (including any records it sent being counted).
    pub fn deferred_done(&self) {
        self.shared.q.record_done();
    }

    #[inline]
    fn check_poison(&self) {
        if self.shared.q.is_poisoned() {
            panic!("{POISON_MSG} (observed on rank {})", self.rank);
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        if let Some(t) = self.transport.take() {
            // The worker drains every staged envelope before exiting
            // (`worker_loop` only returns on empty + shutdown), so no
            // envelope is lost; the join makes the rank's teardown
            // happen-after all of its transport effects.
            t.stage.shutdown();
            if let Some(handle) = t.handle {
                let _ = handle.join();
            }
            debug_assert!(t.stage.is_idle(), "transport worker exited with work");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn ping_all_to_all() {
        // Every rank sends its rank id to every rank; each rank must
        // receive exactly nranks records summing to 0+1+..+n-1.
        for nranks in [1, 2, 3, 4, 7] {
            let sums: Vec<u64> = World::new(nranks).run(|comm| {
                let sum = Rc::new(Cell::new(0u64));
                let sum2 = sum.clone();
                let h = comm.register::<u64, _>(move |_c, v| {
                    sum2.set(sum2.get() + v);
                });
                for dest in 0..comm.nranks() {
                    comm.send(dest, &h, &(comm.rank() as u64));
                }
                comm.barrier();
                sum.get()
            });
            let expect: u64 = (0..nranks as u64).sum();
            assert_eq!(sums, vec![expect; nranks], "nranks={nranks}");
        }
    }

    #[test]
    fn handler_chains_complete_before_barrier() {
        // A message that triggers a relay: rank r forwards to (r+1)%n,
        // decrementing a hop count. The barrier must not release until the
        // whole chain has drained.
        let nranks = 4;
        let arrived = Arc::new(StdAtomicU64::new(0));
        let arrived_outer = arrived.clone();
        let results: Vec<u64> = World::new(nranks).run(move |comm| {
            let arrived = arrived_outer.clone();
            let relay: Rc<RefCell<Option<Handler<u64>>>> = Rc::new(RefCell::new(None));
            let relay2 = relay.clone();
            let h = comm.register::<u64, _>(move |c, hops| {
                if hops == 0 {
                    arrived.fetch_add(1, Ordering::SeqCst);
                } else {
                    let next = (c.rank() + 1) % c.nranks();
                    let h = relay2.borrow().expect("registered");
                    c.send(next, &h, &(hops - 1));
                }
            });
            *relay.borrow_mut() = Some(h);
            if comm.rank() == 0 {
                // 25 hops wraps the ring several times.
                comm.send(1 % comm.nranks(), &h, &25u64);
            }
            comm.barrier();
            comm.counters().snapshot().handlers_run
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 1);
        let total_handlers: u64 = results.iter().sum();
        assert_eq!(total_handlers, 26); // 25 relays + terminal
    }

    #[test]
    fn multiple_barriers_in_sequence() {
        let nranks = 3;
        let counts: Vec<u64> = World::new(nranks).run(|comm| {
            let seen = Rc::new(Cell::new(0u64));
            let seen2 = seen.clone();
            let h = comm.register::<u64, _>(move |_c, _v| {
                seen2.set(seen2.get() + 1);
            });
            for phase in 0..5u64 {
                for dest in 0..comm.nranks() {
                    comm.send(dest, &h, &phase);
                }
                comm.barrier();
                // After each barrier exactly (phase+1)*nranks records seen.
                assert_eq!(seen.get(), (phase + 1) * comm.nranks() as u64);
            }
            seen.get()
        });
        assert_eq!(counts, vec![15; nranks]);
    }

    #[test]
    fn heterogeneous_messages_interleave() {
        // Two handlers with different payload types share buffers, as in
        // YGM's serialization story (§4.1.2).
        let nranks = 2;
        let out: Vec<(u64, String)> = World::new(nranks).run(|comm| {
            let nums = Rc::new(Cell::new(0u64));
            let text = Rc::new(RefCell::new(String::new()));
            let nums2 = nums.clone();
            let text2 = text.clone();
            let h_num = comm.register::<u64, _>(move |_c, v| {
                nums2.set(nums2.get() + v);
            });
            let h_str = comm.register::<String, _>(move |_c, s| {
                text2.borrow_mut().push_str(&s);
            });
            let dest = (comm.rank() + 1) % comm.nranks();
            for i in 0..10u64 {
                comm.send(dest, &h_num, &i);
                comm.send(dest, &h_str, &"x".to_string());
            }
            comm.barrier();
            let collected = text.borrow().clone();
            (nums.get(), collected)
        });
        for (n, s) in out {
            assert_eq!(n, 45);
            assert_eq!(s, "xxxxxxxxxx");
        }
    }

    #[test]
    fn small_threshold_forces_many_envelopes() {
        let config = CommConfig {
            flush_threshold: Some(4),
            ranks_per_node: 1, // pin: the remote/local split below assumes it
            ..Default::default()
        };
        let stats = World::new(2).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.send(1, &h, &i);
                }
            }
            comm.barrier();
        });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_remote, 100);
        // With a 4-byte threshold nearly every record ships alone.
        assert!(
            s0.envelopes_remote >= 50,
            "envelopes {}",
            s0.envelopes_remote
        );
    }

    #[test]
    fn large_threshold_aggregates() {
        let config = CommConfig {
            flush_threshold: Some(1 << 20),
            ranks_per_node: 1, // pin: the remote/local split below assumes it
            ..Default::default()
        };
        let stats = World::new(2).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.send(1, &h, &i);
                }
            }
            comm.barrier();
        });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_remote, 100);
        assert_eq!(s0.envelopes_remote, 1, "all records in one envelope");
    }

    #[test]
    fn flush_threshold_resolves_adaptively_and_respects_override() {
        // Default config: the resolved threshold follows the cost
        // model's nranks scaling (tiny worlds sit on the 8 KiB floor).
        for nranks in [1usize, 2, 4] {
            let config = CommConfig::default();
            let expect = config.effective_flush_threshold(nranks);
            let got = World::new(nranks).run(|comm| comm.flush_threshold());
            assert_eq!(got, vec![expect; nranks], "nranks={nranks}");
            assert_eq!(
                expect,
                crate::cost::CostModel::default()
                    .adaptive_flush_threshold(nranks, config.ranks_per_node)
            );
        }
        // The same-node threshold resolves to the shallow local default
        // and sits at or below the remote one.
        let locals = World::new(2).run(|comm| comm.local_flush_threshold());
        let expect_local = CommConfig::default().effective_local_flush_threshold();
        assert_eq!(locals, vec![expect_local; 2]);
        assert!(expect_local <= CommConfig::default().effective_flush_threshold(2));
        // Explicit override wins regardless of world size.
        let got = World::new(3)
            .with_config(CommConfig {
                flush_threshold: Some(999),
                ..Default::default()
            })
            .run(|comm| comm.flush_threshold());
        assert_eq!(got, vec![999; 3]);
    }

    #[test]
    fn local_sends_counted_separately() {
        let stats = World::new(2).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            comm.send(comm.rank(), &h, &1u64); // self
            comm.barrier();
        });
        for s in &stats.stats {
            assert_eq!(s.records_local, 1);
            assert_eq!(s.records_remote, 0);
            assert!(s.bytes_local > 0);
            assert_eq!(s.bytes_remote, 0);
        }
    }

    #[test]
    fn pending_returns_to_zero() {
        World::new(3).run(|comm| {
            let h = comm.register::<Vec<u64>, _>(|_c, _v| {});
            for dest in 0..comm.nranks() {
                comm.send(dest, &h, &vec![1, 2, 3]);
            }
            comm.barrier();
            assert_eq!(comm.shared().q.pending(), 0);
        });
    }

    #[test]
    fn late_registration_defers_messages() {
        // Regression test for the phase race: a fast rank exits a
        // barrier, registers the next phase's handler and sends to a
        // slow rank that is still spinning inside the old barrier. The
        // slow rank must defer the record until its own registration
        // catches up — never crash, never lose the record.
        for trial in 0..50 {
            let out = World::new(3).run(|comm| {
                let h1 = comm.register::<u64, _>(|_c, _v| {});
                // Stagger arrival so barrier roles vary across trials.
                if comm.rank() != 0 {
                    std::thread::yield_now();
                }
                comm.send((comm.rank() + 1) % comm.nranks(), &h1, &1u64);
                comm.barrier();

                // Phase 2: register late on some ranks.
                if comm.rank() == 2 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                let got = Rc::new(Cell::new(0u64));
                let got2 = got.clone();
                let h2 = comm.register::<u64, _>(move |_c, v| {
                    got2.set(got2.get() + v);
                });
                for dest in 0..comm.nranks() {
                    comm.send(dest, &h2, &10u64);
                }
                comm.barrier();
                got.get()
            });
            assert_eq!(out, vec![30, 30, 30], "trial {trial}");
        }
    }

    #[test]
    fn send_to_many_encodes_once_delivers_everywhere() {
        // Rank 0 fans one record out to every rank: each rank must
        // receive it exactly once, every delivery is a full record on
        // the wire, but only ONE encode is performed.
        let nranks = 4;
        let config = CommConfig {
            ranks_per_node: 1, // pin: the remote/local split below assumes it
            ..Default::default()
        };
        let stats = World::new(nranks)
            .with_config(config)
            .run_with_stats(|comm| {
                let got = Rc::new(RefCell::new(Vec::new()));
                let got2 = got.clone();
                let h = comm.register::<(u64, Vec<u64>), _>(move |_c, msg| {
                    got2.borrow_mut().push(msg);
                });
                if comm.rank() == 0 {
                    let payload = (99u64, vec![1u64, 2, 3]);
                    comm.send_to_many(0..comm.nranks(), &h, &payload);
                }
                comm.barrier();
                assert_eq!(got.borrow().len(), 1, "rank {}", comm.rank());
                assert_eq!(got.borrow()[0], (99, vec![1, 2, 3]));
            });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_encoded, 1, "one encode serves all destinations");
        assert_eq!(s0.records_total(), nranks as u64);
        // 3 remote + 1 self delivery, each a full record's bytes.
        assert_eq!(s0.records_remote, 3);
        assert_eq!(s0.records_local, 1);
        assert!(s0.bytes_encoded > 0);
        assert_eq!(s0.bytes_total(), s0.bytes_encoded * nranks as u64);
        for s in &stats.stats[1..] {
            assert_eq!(s.records_total(), 0, "only rank 0 sent");
        }
    }

    #[test]
    fn send_to_many_matches_loop_of_sends_on_the_wire() {
        // Receivers can't tell fan-out deliveries from individual sends:
        // same records, same bytes, same decoded values.
        let run = |fanout: bool| {
            World::new(3).run_with_stats(move |comm| {
                let sum = Rc::new(Cell::new(0u64));
                let sum2 = sum.clone();
                let h = comm.register::<(u64, u64), _>(move |_c, (a, b)| {
                    sum2.set(sum2.get() + a + b);
                });
                if comm.rank() == 0 {
                    if fanout {
                        comm.send_to_many(0..comm.nranks(), &h, (5u64, 7u64));
                    } else {
                        for dest in 0..comm.nranks() {
                            comm.send(dest, &h, &(5u64, 7u64));
                        }
                    }
                }
                comm.barrier();
                sum.get()
            })
        };
        let with_fanout = run(true);
        let with_loop = run(false);
        assert_eq!(with_fanout.results, with_loop.results);
        assert_eq!(
            with_fanout.stats[0].bytes_total(),
            with_loop.stats[0].bytes_total()
        );
        assert_eq!(
            with_fanout.stats[0].records_total(),
            with_loop.stats[0].records_total()
        );
        // ...but the encoder ran once instead of nranks times.
        assert_eq!(with_fanout.stats[0].records_encoded, 1);
        assert_eq!(with_loop.stats[0].records_encoded, 3);
    }

    #[test]
    fn steady_state_flushes_reuse_pooled_buffers() {
        // Two ranks exchanging many over-threshold bursts: after the
        // first round trips, drained buffers must restart from recycled
        // envelope allocations.
        let config = CommConfig {
            flush_threshold: Some(256),
            ..Default::default()
        };
        let stats = World::new(2).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<Vec<u64>, _>(|_c, _v| {});
            let peer = (comm.rank() + 1) % comm.nranks();
            for _round in 0..20 {
                for _ in 0..8 {
                    comm.send(peer, &h, &vec![1u64; 32]);
                }
                comm.barrier();
            }
        });
        let total: u64 = stats.stats.iter().map(|s| s.pool_reuses).sum();
        assert!(total > 0, "expected pooled buffer reuse, got {total}");
    }

    #[test]
    fn borrowed_handler_decodes_in_place_and_counts() {
        use crate::wire::SeqCursor;
        // Rank 0 sends (tag, candidate list) records; the receiver
        // consumes them through a streaming cursor with no owned
        // message, and the new counters reflect the in-place decode.
        let nranks = 2;
        let stats = World::new(nranks).run_with_stats(|comm| {
            let sum = Rc::new(Cell::new(0u64));
            let sum2 = sum.clone();
            let h = comm.register_borrowed::<(u64, Vec<u64>), _>(move |_c, r| {
                let tag = u64::decode(r)?;
                let mut cur = SeqCursor::begin(r)?;
                let mut acc = tag;
                while let Some(v) = cur.next_value::<u64>() {
                    acc += v?;
                }
                sum2.set(sum2.get() + acc);
                Ok(())
            });
            if comm.rank() == 0 {
                comm.send(1, &h, &(100u64, vec![1u64, 2, 3]));
                comm.send(1, &h, &(200u64, vec![10u64, 20]));
            }
            comm.barrier();
            if comm.rank() == 1 {
                assert_eq!(sum.get(), 100 + 6 + 200 + 30);
            }
        });
        assert_eq!(stats.stats[1].records_borrowed, 2);
        assert!(stats.stats[1].bytes_decoded_in_place > 0);
        // Every payload byte was decoded in place: sent bytes minus the
        // one-byte handler id each of the two records carries.
        assert_eq!(
            stats.stats[1].bytes_decoded_in_place,
            stats.stats[0].bytes_total() - 2
        );
        assert_eq!(stats.stats[0].records_borrowed, 0);
    }

    #[test]
    fn borrowed_and_owned_handlers_share_envelopes() {
        // Records for both handler kinds interleave in one buffer; the
        // borrowed handler must leave the reader exactly at the next
        // record (exercised by skip_rest after a partial walk).
        use crate::wire::SeqCursor;
        let out: Vec<(u64, u64)> = World::new(2).run(|comm| {
            let owned_sum = Rc::new(Cell::new(0u64));
            let borrowed_sum = Rc::new(Cell::new(0u64));
            let os = owned_sum.clone();
            let bs = borrowed_sum.clone();
            let h_owned = comm.register::<u64, _>(move |_c, v| {
                os.set(os.get() + v);
            });
            let h_borrowed = comm.register_borrowed::<Vec<u64>, _>(move |_c, r| {
                let mut cur = SeqCursor::begin(r)?;
                // Consume only the first element, then skip the rest.
                if let Some(v) = cur.next_value::<u64>() {
                    bs.set(bs.get() + v?);
                }
                cur.skip_rest::<u64>()
            });
            let dest = (comm.rank() + 1) % comm.nranks();
            for i in 0..10u64 {
                comm.send(dest, &h_owned, &i);
                comm.send(dest, &h_borrowed, &vec![i, 1000, 2000]);
            }
            comm.barrier();
            (owned_sum.get(), borrowed_sum.get())
        });
        for (owned, borrowed) in out {
            assert_eq!(owned, 45);
            assert_eq!(borrowed, 45, "only first elements summed");
        }
    }

    #[test]
    fn multicast_fanout_encodes_payload_once_on_the_wire() {
        // Rank 0 fans one (sizable) record out to every rank of a
        // remote node: the payload must cross the wire once, inside a
        // multicast section the gateway expands, and the counters must
        // make the saving observable.
        let nranks = 8;
        let config = CommConfig {
            ranks_per_node: 4,
            ..Default::default()
        };
        let stats = World::new(nranks)
            .with_config(config)
            .run_with_stats(|comm| {
                let got = Rc::new(RefCell::new(Vec::new()));
                let got2 = got.clone();
                let h = comm.register::<(u64, Vec<u64>), _>(move |_c, msg| {
                    got2.borrow_mut().push(msg);
                });
                if comm.rank() == 0 {
                    let payload = (7u64, (0..32u64).collect::<Vec<_>>());
                    comm.send_to_many(4..8, &h, &payload);
                }
                comm.barrier();
                if comm.rank() >= 4 {
                    assert_eq!(got.borrow().len(), 1, "rank {}", comm.rank());
                    assert_eq!(got.borrow()[0].0, 7);
                    assert_eq!(got.borrow()[0].1.len(), 32);
                } else {
                    assert!(got.borrow().is_empty(), "rank {}", comm.rank());
                }
            });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_encoded, 1);
        assert_eq!(s0.records_remote, 4);
        assert_eq!(s0.records_multicast, 4, "all four deliveries multicast");
        assert!(s0.multicast_bytes_saved > 0);
        // Wire bytes + forgone copies account exactly for the four
        // per-rank copies the old path would have made.
        assert_eq!(
            s0.bytes_remote + s0.multicast_bytes_saved,
            4 * s0.bytes_encoded
        );
        // The payload crossed the network once: well under two copies.
        assert!(s0.bytes_remote < 2 * s0.bytes_encoded);
    }

    #[test]
    fn multicast_fanout_matches_unicast_loop_deliveries() {
        // Receivers cannot tell a multicast fan-out from a loop of
        // sends: same records delivered, same decoded values — only the
        // wire volume differs.
        let config = CommConfig {
            ranks_per_node: 3,
            ..Default::default()
        };
        let run = |fanout: bool| {
            let config = config.clone();
            World::new(7)
                .with_config(config)
                .run_with_stats(move |comm| {
                    let sum = Rc::new(Cell::new(0u64));
                    let sum2 = sum.clone();
                    let h = comm.register::<Vec<u64>, _>(move |_c, v| {
                        sum2.set(sum2.get() + v.iter().sum::<u64>());
                    });
                    if comm.rank() == 0 {
                        let payload: Vec<u64> = (0..64).collect();
                        if fanout {
                            comm.send_to_many(0..comm.nranks(), &h, &payload);
                        } else {
                            for dest in 0..comm.nranks() {
                                comm.send(dest, &h, &payload);
                            }
                        }
                    }
                    comm.barrier();
                    sum.get()
                })
        };
        let with_fanout = run(true);
        let with_loop = run(false);
        assert_eq!(with_fanout.results, with_loop.results);
        let (f0, l0) = (with_fanout.stats[0], with_loop.stats[0]);
        assert_eq!(f0.records_total(), l0.records_total());
        // Nodes 1 ({3,4,5}) and 2 ({6}) are remote to rank 0: the
        // 3-rank run multicasts, the lone rank 6 stays unicast.
        assert_eq!(f0.records_multicast, 3);
        assert!(
            f0.bytes_remote < l0.bytes_remote,
            "multicast must shrink wire bytes: {} vs {}",
            f0.bytes_remote,
            l0.bytes_remote
        );
        assert_eq!(f0.bytes_remote + f0.multicast_bytes_saved, l0.bytes_remote);
    }

    #[test]
    fn tiny_multicast_falls_back_to_per_rank_copies() {
        // A record so small the destination-set header would not pay
        // for itself ships as per-rank copies even on a co-node run.
        let config = CommConfig {
            ranks_per_node: 4,
            ..Default::default()
        };
        let stats = World::new(8).with_config(config).run_with_stats(|comm| {
            let seen = Rc::new(Cell::new(0u64));
            let seen2 = seen.clone();
            let h = comm.register::<u64, _>(move |_c, v| {
                seen2.set(seen2.get() + v);
            });
            if comm.rank() == 0 {
                comm.send_to_many(4..6, &h, 1u64);
            }
            comm.barrier();
            if comm.rank() == 4 || comm.rank() == 5 {
                assert_eq!(seen.get(), 1);
            }
        });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_remote, 2);
        assert_eq!(
            s0.records_multicast, 0,
            "header would cost more than it saves"
        );
        assert_eq!(s0.multicast_bytes_saved, 0);
    }

    #[test]
    fn empty_send_to_many_is_a_no_op() {
        let stats = World::new(2).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            comm.send_to_many(std::iter::empty(), &h, 5u64);
            comm.barrier();
        });
        for s in &stats.stats {
            assert_eq!(s.records_encoded, 0);
            assert_eq!(s.records_total(), 0);
        }
    }

    #[test]
    fn same_node_destinations_flush_earlier_than_remote() {
        // The per-destination policy: ~3 KB to a same-node peer crosses
        // the shallow local threshold (one mid-stream flush plus the
        // barrier flush), while the same volume to a remote node stays
        // below the node-scaled threshold (barrier flush only).
        let config = CommConfig {
            flush_threshold: None, // adaptive: the policy under test
            ranks_per_node: 2,
            ..Default::default()
        };
        let stats = World::new(4).with_config(config).run_with_stats(|comm| {
            assert!(comm.local_flush_threshold() < comm.flush_threshold());
            let h = comm.register::<Vec<u64>, _>(|_c, _v| {});
            if comm.rank() == 0 {
                for _ in 0..12 {
                    // ~253 bytes per record (25 max-width varints).
                    comm.send(1, &h, &vec![u64::MAX; 25]);
                    comm.send(2, &h, &vec![u64::MAX; 25]);
                }
            }
            comm.barrier();
        });
        let s0 = stats.stats[0];
        assert_eq!(
            s0.envelopes_local, 2,
            "local buffer must flush mid-stream then at the barrier"
        );
        assert_eq!(
            s0.envelopes_remote, 1,
            "remote buffer aggregates until the barrier"
        );
        assert_eq!(s0.bytes_local, s0.bytes_remote);
    }

    #[test]
    fn overlapped_flush_is_invisible_to_counters() {
        // Same program with the transport stage on and off: identical
        // results and identical deterministic counters (the overlap
        // changes *when* the channel send runs, never what is sent).
        let run = |overlap: bool| {
            let config = CommConfig {
                ranks_per_node: 2,
                overlap_flush: Some(overlap),
                ..Default::default()
            };
            World::new(4)
                .with_config(config)
                .run_with_stats(move |comm| {
                    let sum = Rc::new(Cell::new(0u64));
                    let sum2 = sum.clone();
                    let h = comm.register::<u64, _>(move |_c, v| {
                        sum2.set(sum2.get() + v);
                    });
                    for round in 0..3u64 {
                        for dest in 0..comm.nranks() {
                            comm.send(dest, &h, &(round + comm.rank() as u64));
                        }
                        comm.send_to_many(0..comm.nranks(), &h, 100 + round);
                        comm.barrier();
                    }
                    sum.get()
                })
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.results, off.results);
        for (rank, (a, b)) in on.stats.iter().zip(off.stats.iter()).enumerate() {
            assert_eq!(a.records_remote, b.records_remote, "rank {rank}");
            assert_eq!(a.records_local, b.records_local, "rank {rank}");
            assert_eq!(a.bytes_remote, b.bytes_remote, "rank {rank}");
            assert_eq!(a.bytes_local, b.bytes_local, "rank {rank}");
            assert_eq!(a.envelopes_remote, b.envelopes_remote, "rank {rank}");
            assert_eq!(a.records_encoded, b.records_encoded, "rank {rank}");
            assert_eq!(a.bytes_encoded, b.bytes_encoded, "rank {rank}");
            assert_eq!(a.records_multicast, b.records_multicast, "rank {rank}");
            assert_eq!(
                a.multicast_bytes_saved, b.multicast_bytes_saved,
                "rank {rank}"
            );
            assert_eq!(a.handlers_run, b.handlers_run, "rank {rank}");
            assert_eq!(a.barriers, b.barriers, "rank {rank}");
        }
    }

    /// Extracts a panic payload's message.
    fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> &str {
        payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string panic>")
    }

    /// Injects `section` as a raw multicast section at rank 0 (the
    /// gateway of node 0 under `ranks_per_node: 2`) and asserts the
    /// world aborts with a structural wire error — before any handler
    /// runs (the registered handler panics with its own marker if it is
    /// ever invoked, which would change the propagated message).
    fn expect_structural_abort(section: Vec<u8>, expected: &str) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let config = CommConfig {
                ranks_per_node: 2,
                ..Default::default()
            };
            World::new(2).with_config(config).run(|comm| {
                let _h =
                    comm.register::<u64, _>(|_c, _v| panic!("handler ran on a corrupt section"));
                if comm.rank() == 1 {
                    // Keep the barrier from releasing until the gateway
                    // has actually examined the hostile section.
                    comm.shared().q.record_sent();
                    comm.shared().senders[0]
                        .send(Envelope::Bundle(vec![Section::Multicast(section.clone())]))
                        .expect("world alive");
                }
                comm.barrier();
            });
        }));
        let err = result.expect_err("corrupt section must abort the world");
        let msg = panic_message(&err);
        assert!(
            msg.contains("corrupt multicast section"),
            "wrong abort: {msg}"
        );
        assert!(msg.contains(expected), "expected {expected:?} in: {msg}");
    }

    #[test]
    fn multicast_zero_destination_section_fails_structurally() {
        expect_structural_abort(vec![0x00], "destination set is invalid");
    }

    #[test]
    fn multicast_oversized_destination_count_fails_structurally() {
        // ndests = 7 on a 2-rank node.
        expect_structural_abort(vec![0x07], "destination set is invalid");
    }

    #[test]
    fn multicast_truncated_destination_list_fails_structurally() {
        // Claims 2 destinations, provides 1.
        expect_structural_abort(vec![0x02, 0x00], "unexpected end of wire buffer");
    }

    #[test]
    fn multicast_duplicate_offsets_fail_structurally() {
        expect_structural_abort(vec![0x02, 0x01, 0x01], "destination set is invalid");
    }

    #[test]
    fn multicast_decreasing_offsets_fail_structurally() {
        expect_structural_abort(vec![0x02, 0x01, 0x00], "destination set is invalid");
    }

    #[test]
    fn multicast_out_of_range_offset_fails_structurally() {
        // Offset 5 on a 2-rank node.
        expect_structural_abort(vec![0x01, 0x05], "destination set is invalid");
    }

    #[test]
    fn multicast_length_overrun_fails_structurally() {
        // One destination, record length claims 200 bytes, none follow.
        expect_structural_abort(
            vec![0x01, 0x00, 0xc8, 0x01],
            "sequence length prefix claims 200",
        );
    }

    #[test]
    fn every_truncation_of_a_valid_section_fails_structurally() {
        // Hostile-framing sweep: build one valid multicast frame, then
        // replay every strict non-empty prefix. Cutting anywhere —
        // inside a varint, the offset list, the length, or the record
        // bytes — must surface as a structural abort, never a handler
        // invocation and never a hang.
        let mut origin = SendBuffer::new();
        origin.push_record(0, &(11u64, 222u64));
        let (record, _) = origin.drain();
        let mut buf = SendBuffer::new();
        buf.push_multicast(&[0, 1], &record);
        let (frame, _) = buf.drain();
        assert!(frame.len() >= 6);
        for cut in 1..frame.len() {
            expect_structural_abort(frame[..cut].to_vec(), "corrupt multicast section");
        }
    }

    /// Injects `bytes` as a raw direct envelope at rank 0 and asserts
    /// the world aborts with a structural corrupt-envelope error —
    /// never a panic from the `take_varint` unwrap path, never a
    /// forever-deferred buffer (a hang), and never a handler run.
    fn expect_envelope_abort(bytes: Vec<u8>, expected: &str) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            World::new(2).run(|comm| {
                let _h = comm.register::<u64, _>(|_c, _v| panic!("handler ran on corrupt bytes"));
                if comm.rank() == 1 {
                    comm.shared().q.record_sent();
                    comm.shared().senders[0]
                        .send(Envelope::Direct(bytes.clone()))
                        .expect("world alive");
                }
                comm.barrier();
            });
        }));
        let err = result.expect_err("corrupt envelope must abort the world");
        let msg = panic_message(&err);
        assert!(msg.contains("rank 0 aborted"), "wrong rank: {msg}");
        assert!(msg.contains("corrupt envelope"), "wrong abort: {msg}");
        assert!(msg.contains(expected), "expected {expected:?} in: {msg}");
    }

    #[test]
    fn truncated_handler_id_aborts_structurally() {
        // A lone continuation byte: the handler-id varint never
        // terminates. Previously this was an `expect` panic.
        expect_envelope_abort(vec![0x80], "handler id");
    }

    #[test]
    fn oversized_handler_id_aborts_structurally() {
        // Varint decoding to 2^32 — beyond the u32 handler-id space, so
        // it can never become registered. Without the bounds check this
        // would be deferred and retried forever (a hang, not a panic).
        expect_envelope_abort(
            vec![0x80, 0x80, 0x80, 0x80, 0x10],
            "exceeds the u32 handler-id space",
        );
    }

    #[test]
    #[should_panic(expected = "rank 1 aborted: bad wedge batch")]
    fn abort_names_rank_and_reason_and_releases_peers() {
        World::new(3).run(|comm| {
            if comm.rank() == 1 {
                comm.abort(format_args!("bad wedge batch from rank {}", 0));
            }
            comm.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "rank 0 exploding")]
    fn peer_panic_poisons_barrier_and_root_cause_propagates() {
        // Rank 1 would hang in the barrier forever without poisoning; the
        // world must terminate and re-raise rank 0's original panic.
        World::new(2).run(|comm| {
            if comm.rank() == 0 {
                panic!("rank 0 exploding");
            }
            comm.barrier();
        });
    }
}
