//! The asynchronous communicator.
//!
//! [`Comm`] is the Rust analogue of YGM's `ygm::comm` (§4.1 of the paper):
//! a fire-and-forget active-message endpoint held by each rank of an SPMD
//! program. Its three pillars mirror the paper's description:
//!
//! * **RPC semantics** (§4.1.3): a message is a registered handler plus
//!   serialized arguments. YGM ships a lambda offset; our ranks share one
//!   binary and register the same handlers in the same order, so a small
//!   integer handler id plays the same role.
//! * **Message buffering** (§4.1.1): [`Comm::send`] appends to a
//!   per-destination [`SendBuffer`]; buffers move to the transport only
//!   when they cross the configured threshold or at a flush point.
//! * **Serialization** (§4.1.2): payloads are [`Wire`]-encoded bytes, so
//!   heterogeneous records (adjacency lists, strings, counter updates)
//!   interleave freely in one buffer.
//!
//! Completion is detected by a quiescence **barrier**: fire-and-forget
//! messages have no replies, so a phase ends when every rank has reached
//! the barrier *and* no record anywhere remains unprocessed. Handlers may
//! send further messages (the `visit`-chains of vertex-centric
//! algorithms); the pending-record counter makes such chains count toward
//! quiescence.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, SendBuffer};
use crate::quiesce::Quiescence;
use crate::stats::RankCounters;
use crate::wire::{put_varint, Wire, WireEncode, WireError, WireReader};

/// Index of a simulated MPI rank.
pub type Rank = usize;

/// Panic message used when a rank aborts because a peer panicked first.
/// The world driver filters these so the root-cause panic is the one that
/// propagates to the caller.
pub(crate) const POISON_MSG: &str = "peer rank panicked; aborting barrier";

/// Tuning knobs for the communicator.
#[derive(Debug, Clone)]
pub struct CommConfig {
    /// Buffer size (bytes) at which a destination buffer is shipped.
    ///
    /// `None` (the default) resolves **adaptively** at world
    /// construction: [`crate::cost::CostModel::adaptive_flush_threshold`]
    /// scales the per-buffer threshold with the rank count, from the
    /// tiny-world 8 KiB floor (so small experiments still exercise
    /// multi-envelope behaviour) up to YGM's real-cluster ~MB buffers —
    /// a fixed threshold would degenerate into the §5.4 small-message
    /// blowup as the world grows. `Some(bytes)` is the explicit
    /// override, used by tests and the ablation study.
    pub flush_threshold: Option<usize>,
    /// Simulated ranks per compute node for **node-level aggregation**
    /// (the §5.4 remedy for small-message blowup at scale: "extra
    /// aggregation of messages at the level of compute nodes").
    ///
    /// With a value > 1, buffers bound for the ranks of one remote node
    /// ship as a *single* bundled envelope to that node's gateway rank,
    /// which re-distributes the sections locally (free of network cost).
    /// `1` (the default) disables aggregation: every rank is its own
    /// node, as in the paper's measured configuration.
    pub ranks_per_node: usize,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            flush_threshold: None,
            ranks_per_node: 1,
        }
    }
}

impl CommConfig {
    /// The threshold a world of `nranks` ranks will run with: the
    /// explicit override if set, otherwise the cost model's adaptive
    /// default.
    pub fn effective_flush_threshold(&self, nranks: usize) -> usize {
        self.flush_threshold
            .unwrap_or_else(|| crate::cost::CostModel::default().adaptive_flush_threshold(nranks))
    }
}

/// One shipped message: the unit that would be a single MPI message.
pub(crate) enum Envelope {
    /// Records for the receiving rank itself.
    Direct(Vec<u8>),
    /// Node-level aggregate: `(final rank, records)` sections for the
    /// ranks of the gateway's node; the gateway re-distributes them.
    Bundle(Vec<(u32, Vec<u8>)>),
}

/// State shared by all ranks of a world.
pub(crate) struct Shared {
    pub(crate) nranks: usize,
    pub(crate) senders: Vec<Sender<Envelope>>,
    /// The pending-record counter and generation barrier (extracted so
    /// the shipping protocol runs under the model checker — see
    /// [`crate::quiesce`]).
    pub(crate) q: Quiescence,
    /// Per-rank communication counters.
    pub(crate) counters: Vec<RankCounters>,
    /// Scratch slots for collectives (one per rank).
    pub(crate) slots: Vec<Mutex<Vec<u8>>>,
}

impl Shared {
    pub(crate) fn new(nranks: usize, senders: Vec<Sender<Envelope>>) -> Self {
        Shared {
            nranks,
            senders,
            q: Quiescence::new(),
            counters: (0..nranks).map(|_| RankCounters::default()).collect(),
            slots: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

type DynHandler = Rc<dyn Fn(&Comm, &mut WireReader<'_>)>;

/// Typed identifier for a registered message handler.
///
/// Obtained from [`Comm::register`]; all ranks must register the same
/// handlers in the same order so that ids agree (the SPMD analogue of
/// YGM's sender/receiver lambda-offset agreement).
pub struct Handler<M> {
    id: u32,
    _marker: std::marker::PhantomData<fn(M)>,
}

impl<M> Clone for Handler<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Handler<M> {}

impl<M> Handler<M> {
    /// The raw handler id (diagnostics only).
    pub fn id(&self) -> u32 {
        self.id
    }
}

/// Per-rank communicator endpoint. Not `Send`: it lives and dies on its
/// rank's thread, like an MPI communicator handle.
pub struct Comm {
    rank: Rank,
    shared: Arc<Shared>,
    config: CommConfig,
    /// `config.flush_threshold` resolved against the world size at
    /// construction (adaptive unless explicitly overridden).
    flush_threshold: usize,
    rx: Receiver<Envelope>,
    outbufs: RefCell<Vec<SendBuffer>>,
    handlers: RefCell<Vec<DynHandler>>,
    /// Buffer tails whose next record's handler is not yet registered.
    deferred: RefCell<Vec<Vec<u8>>>,
    in_dispatch: Cell<bool>,
    /// Recycled envelope allocations: drained send buffers restart from
    /// vectors this rank has finished dispatching.
    pool: RefCell<BufferPool>,
    /// Scratch for `send_to_many`: one record is encoded here once, then
    /// memcpy'd into each destination buffer.
    scratch: RefCell<Vec<u8>>,
    /// Invoked while this rank spins in `barrier()`: lets an engine
    /// drain work it deferred past handler return (see `defer_work`).
    /// Returns true if it made progress.
    drain_hook: RefCell<Option<DrainHook>>,
}

/// A barrier-spin progress callback (see [`Comm::set_drain_hook`]).
type DrainHook = Rc<dyn Fn(&Comm) -> bool>;

/// Drained send-buffer vectors retained per rank. Bounds pooled memory
/// near `POOL_BUFFERS × flush_threshold` while covering the steady-state
/// envelope flow of a phase.
const POOL_BUFFERS: usize = 32;

impl Comm {
    pub(crate) fn new(
        rank: Rank,
        shared: Arc<Shared>,
        config: CommConfig,
        rx: Receiver<Envelope>,
    ) -> Self {
        let nranks = shared.nranks;
        let flush_threshold = config.effective_flush_threshold(nranks);
        // A buffer flushes shortly past the threshold, so anything much
        // larger is a one-off oversized record — not worth keeping
        // resident. 4x leaves slack for big trailing records.
        let pool_buffer_cap = flush_threshold.saturating_mul(4).max(64 * 1024);
        Comm {
            rank,
            shared,
            config,
            flush_threshold,
            rx,
            outbufs: RefCell::new((0..nranks).map(|_| SendBuffer::new()).collect()),
            handlers: RefCell::new(Vec::new()),
            deferred: RefCell::new(Vec::new()),
            in_dispatch: Cell::new(false),
            pool: RefCell::new(BufferPool::new(POOL_BUFFERS, pool_buffer_cap)),
            scratch: RefCell::new(Vec::new()),
            drain_hook: RefCell::new(None),
        }
    }

    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// The communicator configuration in effect.
    pub fn config(&self) -> &CommConfig {
        &self.config
    }

    /// The flush threshold this world runs with (adaptive default
    /// resolved, or the explicit override).
    #[inline]
    pub fn flush_threshold(&self) -> usize {
        self.flush_threshold
    }

    /// Live counters for this rank.
    #[inline]
    pub fn counters(&self) -> &RankCounters {
        &self.shared.counters[self.rank]
    }

    /// Snapshot of this rank's communication statistics.
    pub fn stats(&self) -> crate::stats::CommStats {
        self.counters().snapshot()
    }

    /// Records `units` of application compute (e.g. wedge-check
    /// comparisons). The cost model prices these as the compute term of
    /// modeled runtimes; wall-clock is unaffected.
    #[inline]
    pub fn add_work(&self, units: u64) {
        self.counters().work.fetch_add(units, Ordering::Relaxed);
    }

    /// Registers a message handler and returns its typed id.
    ///
    /// Must be called collectively: every rank registers the same handlers
    /// in the same order (debug builds verify ids stay in lockstep via the
    /// returned id; a mismatch shows up as decode failures immediately).
    pub fn register<M, F>(&self, f: F) -> Handler<M>
    where
        M: Wire + 'static,
        F: Fn(&Comm, M) + 'static,
    {
        let mut handlers = self.handlers.borrow_mut();
        let id = u32::try_from(handlers.len()).expect("handler id overflow");
        handlers.push(Rc::new(move |comm: &Comm, r: &mut WireReader<'_>| {
            let msg = M::decode(r).unwrap_or_else(|e| {
                panic!(
                    "rank {}: failed to decode message for handler {id}: {e}",
                    comm.rank()
                )
            });
            f(comm, msg);
        }));
        Handler {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers a handler that decodes its message **in place** from
    /// the receive buffer — the zero-copy receive path, mirror of the
    /// encode-once sends.
    ///
    /// The closure receives the envelope's [`WireReader`] positioned at
    /// the start of one `M`-encoded record and must consume **exactly**
    /// that record's bytes (use [`crate::wire::SeqCursor`] /
    /// [`crate::wire::SeqView`] / [`crate::wire::Lazy`] to walk
    /// sequences without materializing them; `SeqCursor::skip_rest`
    /// restores the record boundary after an early exit). Returning an
    /// error aborts the rank like a failed owned decode would.
    ///
    /// Sends target it exactly like an owned handler: `M` is the wire
    /// type the senders encode (or match via [`WireEncode`]). Must be
    /// registered collectively, in the same order on every rank.
    pub fn register_borrowed<M, F>(&self, f: F) -> Handler<M>
    where
        M: Wire + 'static,
        F: Fn(&Comm, &mut WireReader<'_>) -> Result<(), WireError> + 'static,
    {
        let mut handlers = self.handlers.borrow_mut();
        let id = u32::try_from(handlers.len()).expect("handler id overflow");
        handlers.push(Rc::new(move |comm: &Comm, r: &mut WireReader<'_>| {
            let start = r.position();
            if let Err(e) = f(comm, r) {
                panic!(
                    "rank {}: failed to decode message in place for handler {id}: {e}",
                    comm.rank()
                );
            }
            let counters = comm.counters();
            counters.records_borrowed.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_decoded_in_place
                .fetch_add((r.position() - start) as u64, Ordering::Relaxed);
        }));
        Handler {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Aborts the world with a structured reason: peers are poisoned
    /// out of their barriers promptly (instead of waiting for this
    /// rank's unwind to reach the world driver), and the driver
    /// re-raises this message — not the peers' secondary aborts — as
    /// the root cause.
    pub fn abort(&self, reason: impl std::fmt::Display) -> ! {
        let msg = format!("rank {} aborted: {reason}", self.rank);
        self.shared.q.poison();
        panic!("{msg}");
    }

    /// Sends `msg` to be executed by handler `h` on rank `dest`
    /// (fire-and-forget, buffered).
    #[inline]
    pub fn send<M: Wire>(&self, dest: Rank, h: &Handler<M>, msg: &M) {
        self.send_encoded(dest, h, msg);
    }

    /// Sends a record whose payload is appended by a [`WireEncode`]
    /// value — the encode-once path. `enc`'s byte image must match the
    /// handler's message type `M` (see the `wire` module docs); borrowed
    /// tuples and [`crate::wire::encode_seq`] projections serialize
    /// straight from application storage with no intermediate `M`.
    pub fn send_encoded<M: Wire, E: WireEncode>(&self, dest: Rank, h: &Handler<M>, enc: E) {
        debug_assert!(
            dest < self.nranks(),
            "send to rank {dest} of {}",
            self.nranks()
        );
        // Count the record as pending *before* it becomes visible anywhere,
        // so the quiescence barrier can never observe a transient zero.
        // (Ordering rationale lives on `Quiescence::record_sent`.)
        self.shared.q.record_sent();

        let counters = self.counters();
        let ship = {
            let mut bufs = self.outbufs.borrow_mut();
            let buf = &mut bufs[dest];
            let bytes = buf.push_record_with(h.id, |out| enc.encode_wire(out));
            counters.records_encoded.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_encoded
                .fetch_add(bytes as u64, Ordering::Relaxed);
            // "Local" means it never touches the network: self-sends
            // always, and intra-node peers when node aggregation models
            // multiple ranks per node.
            if self.node_of(dest) == self.node_of(self.rank) {
                counters.records_local.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_local
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                counters.records_remote.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_remote
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            }
            if buf.should_flush(self.flush_threshold) {
                Some(self.drain_pooled(buf))
            } else {
                None
            }
        };
        if let Some((data, _records)) = ship {
            self.ship(dest, data);
        }
    }

    /// Sends one record to several destinations: the payload is encoded
    /// **once** into scratch, then appended to each destination's buffer
    /// by memcpy. This is the §4.4 pull-delivery pattern — one
    /// `Adjm+(q)` projection fanned out to every granted rank — without
    /// re-serializing (or re-materializing) the projection per rank.
    ///
    /// Counter contract: each destination is accounted a full record and
    /// its bytes (the wire volume is real), but `records_encoded` rises
    /// by one and `bytes_encoded` by one record's bytes.
    pub fn send_to_many<M, E, I>(&self, dests: I, h: &Handler<M>, enc: E)
    where
        M: Wire,
        E: WireEncode,
        I: IntoIterator<Item = Rank>,
    {
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        put_varint(&mut scratch, u64::from(h.id));
        enc.encode_wire(&mut scratch);

        let counters = self.counters();
        let mut encoded = false;
        for dest in dests {
            debug_assert!(
                dest < self.nranks(),
                "send to rank {dest} of {}",
                self.nranks()
            );
            if !encoded {
                // First destination pays the encode; the rest are copies.
                counters.records_encoded.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_encoded
                    .fetch_add(scratch.len() as u64, Ordering::Relaxed);
                encoded = true;
            }
            // Same pre-visibility argument as `send_encoded`.
            self.shared.q.record_sent();
            let ship = {
                let mut bufs = self.outbufs.borrow_mut();
                let buf = &mut bufs[dest];
                let bytes = buf.push_raw(&scratch);
                if self.node_of(dest) == self.node_of(self.rank) {
                    counters.records_local.fetch_add(1, Ordering::Relaxed);
                    counters
                        .bytes_local
                        .fetch_add(bytes as u64, Ordering::Relaxed);
                } else {
                    counters.records_remote.fetch_add(1, Ordering::Relaxed);
                    counters
                        .bytes_remote
                        .fetch_add(bytes as u64, Ordering::Relaxed);
                }
                if buf.should_flush(self.flush_threshold) {
                    Some(self.drain_pooled(buf))
                } else {
                    None
                }
            };
            if let Some((data, _records)) = ship {
                self.ship(dest, data);
            }
        }
    }

    /// Drains `buf`, restarting it from the recycled-allocation pool.
    #[inline]
    fn drain_pooled(&self, buf: &mut SendBuffer) -> (Vec<u8>, u64) {
        let mut pool = self.pool.borrow_mut();
        let before = pool.reuses();
        let out = buf.drain_pooled(&mut pool);
        if pool.reuses() > before {
            self.counters().pool_reuses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Compute node of a rank under the configured node width.
    #[inline]
    fn node_of(&self, rank: Rank) -> usize {
        rank / self.config.ranks_per_node.max(1)
    }

    /// The rank that receives bundled envelopes for a node.
    #[inline]
    fn gateway_of(&self, node: usize) -> Rank {
        node * self.config.ranks_per_node.max(1)
    }

    /// Ships one drained buffer to `dest`, via the destination node's
    /// gateway when node-level aggregation is active.
    fn ship(&self, dest: Rank, data: Vec<u8>) {
        let counters = self.counters();
        if dest == self.rank {
            counters.envelopes_local.fetch_add(1, Ordering::Relaxed);
            self.shared.senders[dest]
                .send(Envelope::Direct(data))
                .expect("receiver alive while world is running");
            return;
        }
        if self.config.ranks_per_node > 1 && self.node_of(dest) != self.node_of(self.rank) {
            // A lone over-threshold buffer still travels as a (single
            // section) bundle so the gateway accounting stays uniform.
            let gateway = self.gateway_of(self.node_of(dest));
            counters.envelopes_remote.fetch_add(1, Ordering::Relaxed);
            self.shared.senders[gateway]
                .send(Envelope::Bundle(vec![(dest as u32, data)]))
                .expect("receiver alive while world is running");
            return;
        }
        if self.node_of(dest) == self.node_of(self.rank) {
            counters.envelopes_local.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.envelopes_remote.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.senders[dest]
            .send(Envelope::Direct(data))
            .expect("receiver alive while world is running");
    }

    /// Flushes every non-empty destination buffer to the transport.
    ///
    /// One loop over node sections covers every configuration. Buffers
    /// for this rank's own node (which, with `ranks_per_node == 1`, is
    /// just this rank) and for any single-rank node ship as direct
    /// envelopes; with node-level aggregation, all buffers bound for one
    /// remote multi-rank node leave as a *single* bundled envelope to
    /// that node's gateway — the envelope-count reduction the paper
    /// prescribes for the 6144-rank regime (§5.4).
    pub fn flush_all(&self) {
        let rpn = self.config.ranks_per_node.max(1);
        let nnodes = self.nranks().div_ceil(rpn);
        let my_node = self.node_of(self.rank);
        for node in 0..nnodes {
            let lo = node * rpn;
            let hi = ((node + 1) * rpn).min(self.nranks());
            if rpn == 1 || node == my_node {
                // Direct delivery: every rank of this section gets its
                // own envelope. `ship` classifies local vs remote and
                // handles the (rpn > 1, foreign node) single-buffer
                // bundle case — unreachable here since that is the
                // aggregated branch below.
                for dest in lo..hi {
                    let drained = {
                        let mut bufs = self.outbufs.borrow_mut();
                        if bufs[dest].is_empty() {
                            None
                        } else {
                            Some(self.drain_pooled(&mut bufs[dest]))
                        }
                    };
                    if let Some((data, _records)) = drained {
                        self.ship(dest, data);
                    }
                }
                continue;
            }
            // Remote multi-rank node: bundle every non-empty section
            // into one envelope for the node's gateway.
            let sections: Vec<(u32, Vec<u8>)> = {
                let mut bufs = self.outbufs.borrow_mut();
                let mut sections = Vec::new();
                for d in lo..hi {
                    if !bufs[d].is_empty() {
                        sections.push((d as u32, self.drain_pooled(&mut bufs[d]).0));
                    }
                }
                sections
            };
            if !sections.is_empty() {
                self.counters()
                    .envelopes_remote
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.senders[self.gateway_of(node)]
                    .send(Envelope::Bundle(sections))
                    .expect("receiver alive while world is running");
            }
        }
    }

    /// Processes every envelope currently queued for this rank.
    ///
    /// Returns `true` if at least one record was executed. Handlers run
    /// here; they may send further messages (which stay buffered until the
    /// next flush point).
    ///
    /// Records whose handler id this rank has not registered *yet* are
    /// deferred, not failed: in an SPMD program a fast peer may exit a
    /// barrier, register the next phase's handlers and start sending
    /// while this rank is still spinning in that barrier. The deferred
    /// bytes stay counted in the pending-record total (so no barrier can
    /// release past them) and are retried on the next poll, by which time
    /// this rank's own registrations have caught up.
    pub fn poll(&self) -> bool {
        let mut worked = false;
        // Retry deferred tails first: registrations may have caught up.
        let deferred: Vec<Vec<u8>> = self.deferred.borrow_mut().drain(..).collect();
        for data in deferred {
            worked |= self.dispatch_bytes(data);
        }
        while let Ok(env) = self.rx.try_recv() {
            match env {
                Envelope::Direct(data) => worked |= self.dispatch_bytes(data),
                Envelope::Bundle(sections) => {
                    // Gateway duty: keep our own section, forward the rest
                    // over the (free) intra-node transport.
                    for (dest, data) in sections {
                        let dest = dest as usize;
                        if dest == self.rank {
                            worked |= self.dispatch_bytes(data);
                        } else {
                            debug_assert_eq!(
                                self.node_of(dest),
                                self.node_of(self.rank),
                                "bundle section for a foreign node"
                            );
                            self.counters()
                                .envelopes_local
                                .fetch_add(1, Ordering::Relaxed);
                            self.shared.senders[dest]
                                .send(Envelope::Direct(data))
                                .expect("receiver alive while world is running");
                            worked = true;
                        }
                    }
                }
            }
        }
        worked
    }

    /// Dispatches the records of one buffer; returns whether at least one
    /// record was executed. An unknown handler id defers the rest of the
    /// buffer (records within a buffer stay in order).
    fn dispatch_bytes(&self, data: Vec<u8>) -> bool {
        let was = self.in_dispatch.replace(true);
        let mut executed = false;
        let mut reader = WireReader::new(&data);
        while !reader.is_empty() {
            let record_start = reader.position();
            let hid = reader.take_varint().expect("envelope corrupt: handler id") as usize;
            let handler = {
                let handlers = self.handlers.borrow();
                handlers.get(hid).cloned()
            };
            let Some(handler) = handler else {
                // Not registered yet on this rank: defer the remainder.
                self.deferred
                    .borrow_mut()
                    .push(data[record_start..].to_vec());
                break;
            };
            handler(self, &mut reader);
            executed = true;
            self.counters().handlers_run.fetch_add(1, Ordering::Relaxed);
            // The decrement's Release half is what lets a barrier that
            // reads 0 synchronize with this record's execution — see
            // `Quiescence::record_done`.
            self.shared.q.record_done();
        }
        self.in_dispatch.set(was);
        // Recycle the envelope allocation into this rank's send pool:
        // steady-state flushes then restart from received capacity
        // instead of the allocator.
        self.pool.borrow_mut().put(data);
        executed
    }

    /// Quiescence barrier (YGM `comm.barrier()`).
    ///
    /// Completes only when **all** ranks have entered the barrier **and**
    /// every sent record — including records sent by handlers while ranks
    /// were already waiting — has been executed. Must not be called from
    /// inside a message handler.
    pub fn barrier(&self) {
        assert!(
            !self.in_dispatch.get(),
            "barrier() may not be called from inside a message handler"
        );
        self.flush_all();
        // The rendezvous itself lives in `Quiescence::barrier`; this
        // closure is one poll-and-drain progress step, flushing any
        // sends the drained work produced.
        self.shared.q.barrier(self.nranks(), || {
            self.check_poison();
            if self.poll() | self.run_drain_hook() {
                self.flush_all();
                true
            } else {
                false
            }
        });
        self.counters().barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the barrier drain hook. The hook runs on this rank's
    /// thread whenever the rank spins inside `barrier()`; it should
    /// drain any engine-side deferred work (typically paired with
    /// [`Comm::defer_work`]) and return true if it made progress, in
    /// which case the barrier flushes any sends the drained work
    /// produced and keeps polling. Replaces any previous hook.
    pub fn set_drain_hook(&self, hook: impl Fn(&Comm) -> bool + 'static) {
        *self.drain_hook.borrow_mut() = Some(Rc::new(hook));
    }

    /// Removes the barrier drain hook, if any.
    pub fn clear_drain_hook(&self) {
        *self.drain_hook.borrow_mut() = None;
    }

    fn run_drain_hook(&self) -> bool {
        // Cloned out of the RefCell so the hook itself may install or
        // clear hooks without re-entrant borrow panics.
        let hook = self.drain_hook.borrow().clone();
        match hook {
            Some(hook) => hook(self),
            None => false,
        }
    }

    /// Counts one unit of engine-deferred work against the quiescence
    /// barrier, exactly as an in-flight record would be counted: no
    /// barrier releases until [`Comm::deferred_done`] balances it.
    /// Engines that queue decoded work past handler return (e.g. the
    /// parallel merge path) pair this with a drain hook so the barrier
    /// both waits for and actively drains the queue.
    pub fn defer_work(&self) {
        self.shared.q.record_sent();
    }

    /// Balances one [`Comm::defer_work`] after the deferred unit has
    /// fully executed (including any records it sent being counted).
    pub fn deferred_done(&self) {
        self.shared.q.record_done();
    }

    #[inline]
    fn check_poison(&self) {
        if self.shared.q.is_poisoned() {
            panic!("{POISON_MSG} (observed on rank {})", self.rank);
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn ping_all_to_all() {
        // Every rank sends its rank id to every rank; each rank must
        // receive exactly nranks records summing to 0+1+..+n-1.
        for nranks in [1, 2, 3, 4, 7] {
            let sums: Vec<u64> = World::new(nranks).run(|comm| {
                let sum = Rc::new(Cell::new(0u64));
                let sum2 = sum.clone();
                let h = comm.register::<u64, _>(move |_c, v| {
                    sum2.set(sum2.get() + v);
                });
                for dest in 0..comm.nranks() {
                    comm.send(dest, &h, &(comm.rank() as u64));
                }
                comm.barrier();
                sum.get()
            });
            let expect: u64 = (0..nranks as u64).sum();
            assert_eq!(sums, vec![expect; nranks], "nranks={nranks}");
        }
    }

    #[test]
    fn handler_chains_complete_before_barrier() {
        // A message that triggers a relay: rank r forwards to (r+1)%n,
        // decrementing a hop count. The barrier must not release until the
        // whole chain has drained.
        let nranks = 4;
        let arrived = Arc::new(StdAtomicU64::new(0));
        let arrived_outer = arrived.clone();
        let results: Vec<u64> = World::new(nranks).run(move |comm| {
            let arrived = arrived_outer.clone();
            let relay: Rc<RefCell<Option<Handler<u64>>>> = Rc::new(RefCell::new(None));
            let relay2 = relay.clone();
            let h = comm.register::<u64, _>(move |c, hops| {
                if hops == 0 {
                    arrived.fetch_add(1, Ordering::SeqCst);
                } else {
                    let next = (c.rank() + 1) % c.nranks();
                    let h = relay2.borrow().expect("registered");
                    c.send(next, &h, &(hops - 1));
                }
            });
            *relay.borrow_mut() = Some(h);
            if comm.rank() == 0 {
                // 25 hops wraps the ring several times.
                comm.send(1 % comm.nranks(), &h, &25u64);
            }
            comm.barrier();
            comm.counters().snapshot().handlers_run
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 1);
        let total_handlers: u64 = results.iter().sum();
        assert_eq!(total_handlers, 26); // 25 relays + terminal
    }

    #[test]
    fn multiple_barriers_in_sequence() {
        let nranks = 3;
        let counts: Vec<u64> = World::new(nranks).run(|comm| {
            let seen = Rc::new(Cell::new(0u64));
            let seen2 = seen.clone();
            let h = comm.register::<u64, _>(move |_c, _v| {
                seen2.set(seen2.get() + 1);
            });
            for phase in 0..5u64 {
                for dest in 0..comm.nranks() {
                    comm.send(dest, &h, &phase);
                }
                comm.barrier();
                // After each barrier exactly (phase+1)*nranks records seen.
                assert_eq!(seen.get(), (phase + 1) * comm.nranks() as u64);
            }
            seen.get()
        });
        assert_eq!(counts, vec![15; nranks]);
    }

    #[test]
    fn heterogeneous_messages_interleave() {
        // Two handlers with different payload types share buffers, as in
        // YGM's serialization story (§4.1.2).
        let nranks = 2;
        let out: Vec<(u64, String)> = World::new(nranks).run(|comm| {
            let nums = Rc::new(Cell::new(0u64));
            let text = Rc::new(RefCell::new(String::new()));
            let nums2 = nums.clone();
            let text2 = text.clone();
            let h_num = comm.register::<u64, _>(move |_c, v| {
                nums2.set(nums2.get() + v);
            });
            let h_str = comm.register::<String, _>(move |_c, s| {
                text2.borrow_mut().push_str(&s);
            });
            let dest = (comm.rank() + 1) % comm.nranks();
            for i in 0..10u64 {
                comm.send(dest, &h_num, &i);
                comm.send(dest, &h_str, &"x".to_string());
            }
            comm.barrier();
            let collected = text.borrow().clone();
            (nums.get(), collected)
        });
        for (n, s) in out {
            assert_eq!(n, 45);
            assert_eq!(s, "xxxxxxxxxx");
        }
    }

    #[test]
    fn small_threshold_forces_many_envelopes() {
        let config = CommConfig {
            flush_threshold: Some(4),
            ..Default::default()
        };
        let stats = World::new(2).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.send(1, &h, &i);
                }
            }
            comm.barrier();
        });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_remote, 100);
        // With a 4-byte threshold nearly every record ships alone.
        assert!(
            s0.envelopes_remote >= 50,
            "envelopes {}",
            s0.envelopes_remote
        );
    }

    #[test]
    fn large_threshold_aggregates() {
        let config = CommConfig {
            flush_threshold: Some(1 << 20),
            ..Default::default()
        };
        let stats = World::new(2).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.send(1, &h, &i);
                }
            }
            comm.barrier();
        });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_remote, 100);
        assert_eq!(s0.envelopes_remote, 1, "all records in one envelope");
    }

    #[test]
    fn flush_threshold_resolves_adaptively_and_respects_override() {
        // Default config: the resolved threshold follows the cost
        // model's nranks scaling (tiny worlds sit on the 8 KiB floor).
        for nranks in [1usize, 2, 4] {
            let expect = CommConfig::default().effective_flush_threshold(nranks);
            let got = World::new(nranks).run(|comm| comm.flush_threshold());
            assert_eq!(got, vec![expect; nranks], "nranks={nranks}");
            assert_eq!(
                expect,
                crate::cost::CostModel::default().adaptive_flush_threshold(nranks)
            );
        }
        // Explicit override wins regardless of world size.
        let got = World::new(3)
            .with_config(CommConfig {
                flush_threshold: Some(999),
                ..Default::default()
            })
            .run(|comm| comm.flush_threshold());
        assert_eq!(got, vec![999; 3]);
    }

    #[test]
    fn local_sends_counted_separately() {
        let stats = World::new(2).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            comm.send(comm.rank(), &h, &1u64); // self
            comm.barrier();
        });
        for s in &stats.stats {
            assert_eq!(s.records_local, 1);
            assert_eq!(s.records_remote, 0);
            assert!(s.bytes_local > 0);
            assert_eq!(s.bytes_remote, 0);
        }
    }

    #[test]
    fn pending_returns_to_zero() {
        World::new(3).run(|comm| {
            let h = comm.register::<Vec<u64>, _>(|_c, _v| {});
            for dest in 0..comm.nranks() {
                comm.send(dest, &h, &vec![1, 2, 3]);
            }
            comm.barrier();
            assert_eq!(comm.shared().q.pending(), 0);
        });
    }

    #[test]
    fn late_registration_defers_messages() {
        // Regression test for the phase race: a fast rank exits a
        // barrier, registers the next phase's handler and sends to a
        // slow rank that is still spinning inside the old barrier. The
        // slow rank must defer the record until its own registration
        // catches up — never crash, never lose the record.
        for trial in 0..50 {
            let out = World::new(3).run(|comm| {
                let h1 = comm.register::<u64, _>(|_c, _v| {});
                // Stagger arrival so barrier roles vary across trials.
                if comm.rank() != 0 {
                    std::thread::yield_now();
                }
                comm.send((comm.rank() + 1) % comm.nranks(), &h1, &1u64);
                comm.barrier();

                // Phase 2: register late on some ranks.
                if comm.rank() == 2 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                let got = Rc::new(Cell::new(0u64));
                let got2 = got.clone();
                let h2 = comm.register::<u64, _>(move |_c, v| {
                    got2.set(got2.get() + v);
                });
                for dest in 0..comm.nranks() {
                    comm.send(dest, &h2, &10u64);
                }
                comm.barrier();
                got.get()
            });
            assert_eq!(out, vec![30, 30, 30], "trial {trial}");
        }
    }

    #[test]
    fn send_to_many_encodes_once_delivers_everywhere() {
        // Rank 0 fans one record out to every rank: each rank must
        // receive it exactly once, every delivery is a full record on
        // the wire, but only ONE encode is performed.
        let nranks = 4;
        let stats = World::new(nranks).run_with_stats(|comm| {
            let got = Rc::new(RefCell::new(Vec::new()));
            let got2 = got.clone();
            let h = comm.register::<(u64, Vec<u64>), _>(move |_c, msg| {
                got2.borrow_mut().push(msg);
            });
            if comm.rank() == 0 {
                let payload = (99u64, vec![1u64, 2, 3]);
                comm.send_to_many(0..comm.nranks(), &h, &payload);
            }
            comm.barrier();
            assert_eq!(got.borrow().len(), 1, "rank {}", comm.rank());
            assert_eq!(got.borrow()[0], (99, vec![1, 2, 3]));
        });
        let s0 = stats.stats[0];
        assert_eq!(s0.records_encoded, 1, "one encode serves all destinations");
        assert_eq!(s0.records_total(), nranks as u64);
        // 3 remote + 1 self delivery, each a full record's bytes.
        assert_eq!(s0.records_remote, 3);
        assert_eq!(s0.records_local, 1);
        assert!(s0.bytes_encoded > 0);
        assert_eq!(s0.bytes_total(), s0.bytes_encoded * nranks as u64);
        for s in &stats.stats[1..] {
            assert_eq!(s.records_total(), 0, "only rank 0 sent");
        }
    }

    #[test]
    fn send_to_many_matches_loop_of_sends_on_the_wire() {
        // Receivers can't tell fan-out deliveries from individual sends:
        // same records, same bytes, same decoded values.
        let run = |fanout: bool| {
            World::new(3).run_with_stats(move |comm| {
                let sum = Rc::new(Cell::new(0u64));
                let sum2 = sum.clone();
                let h = comm.register::<(u64, u64), _>(move |_c, (a, b)| {
                    sum2.set(sum2.get() + a + b);
                });
                if comm.rank() == 0 {
                    if fanout {
                        comm.send_to_many(0..comm.nranks(), &h, (5u64, 7u64));
                    } else {
                        for dest in 0..comm.nranks() {
                            comm.send(dest, &h, &(5u64, 7u64));
                        }
                    }
                }
                comm.barrier();
                sum.get()
            })
        };
        let with_fanout = run(true);
        let with_loop = run(false);
        assert_eq!(with_fanout.results, with_loop.results);
        assert_eq!(
            with_fanout.stats[0].bytes_total(),
            with_loop.stats[0].bytes_total()
        );
        assert_eq!(
            with_fanout.stats[0].records_total(),
            with_loop.stats[0].records_total()
        );
        // ...but the encoder ran once instead of nranks times.
        assert_eq!(with_fanout.stats[0].records_encoded, 1);
        assert_eq!(with_loop.stats[0].records_encoded, 3);
    }

    #[test]
    fn steady_state_flushes_reuse_pooled_buffers() {
        // Two ranks exchanging many over-threshold bursts: after the
        // first round trips, drained buffers must restart from recycled
        // envelope allocations.
        let config = CommConfig {
            flush_threshold: Some(256),
            ..Default::default()
        };
        let stats = World::new(2).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<Vec<u64>, _>(|_c, _v| {});
            let peer = (comm.rank() + 1) % comm.nranks();
            for _round in 0..20 {
                for _ in 0..8 {
                    comm.send(peer, &h, &vec![1u64; 32]);
                }
                comm.barrier();
            }
        });
        let total: u64 = stats.stats.iter().map(|s| s.pool_reuses).sum();
        assert!(total > 0, "expected pooled buffer reuse, got {total}");
    }

    #[test]
    fn borrowed_handler_decodes_in_place_and_counts() {
        use crate::wire::SeqCursor;
        // Rank 0 sends (tag, candidate list) records; the receiver
        // consumes them through a streaming cursor with no owned
        // message, and the new counters reflect the in-place decode.
        let nranks = 2;
        let stats = World::new(nranks).run_with_stats(|comm| {
            let sum = Rc::new(Cell::new(0u64));
            let sum2 = sum.clone();
            let h = comm.register_borrowed::<(u64, Vec<u64>), _>(move |_c, r| {
                let tag = u64::decode(r)?;
                let mut cur = SeqCursor::begin(r)?;
                let mut acc = tag;
                while let Some(v) = cur.next_value::<u64>() {
                    acc += v?;
                }
                sum2.set(sum2.get() + acc);
                Ok(())
            });
            if comm.rank() == 0 {
                comm.send(1, &h, &(100u64, vec![1u64, 2, 3]));
                comm.send(1, &h, &(200u64, vec![10u64, 20]));
            }
            comm.barrier();
            if comm.rank() == 1 {
                assert_eq!(sum.get(), 100 + 6 + 200 + 30);
            }
        });
        assert_eq!(stats.stats[1].records_borrowed, 2);
        assert!(stats.stats[1].bytes_decoded_in_place > 0);
        // Every payload byte was decoded in place: sent bytes minus the
        // one-byte handler id each of the two records carries.
        assert_eq!(
            stats.stats[1].bytes_decoded_in_place,
            stats.stats[0].bytes_total() - 2
        );
        assert_eq!(stats.stats[0].records_borrowed, 0);
    }

    #[test]
    fn borrowed_and_owned_handlers_share_envelopes() {
        // Records for both handler kinds interleave in one buffer; the
        // borrowed handler must leave the reader exactly at the next
        // record (exercised by skip_rest after a partial walk).
        use crate::wire::SeqCursor;
        let out: Vec<(u64, u64)> = World::new(2).run(|comm| {
            let owned_sum = Rc::new(Cell::new(0u64));
            let borrowed_sum = Rc::new(Cell::new(0u64));
            let os = owned_sum.clone();
            let bs = borrowed_sum.clone();
            let h_owned = comm.register::<u64, _>(move |_c, v| {
                os.set(os.get() + v);
            });
            let h_borrowed = comm.register_borrowed::<Vec<u64>, _>(move |_c, r| {
                let mut cur = SeqCursor::begin(r)?;
                // Consume only the first element, then skip the rest.
                if let Some(v) = cur.next_value::<u64>() {
                    bs.set(bs.get() + v?);
                }
                cur.skip_rest::<u64>()
            });
            let dest = (comm.rank() + 1) % comm.nranks();
            for i in 0..10u64 {
                comm.send(dest, &h_owned, &i);
                comm.send(dest, &h_borrowed, &vec![i, 1000, 2000]);
            }
            comm.barrier();
            (owned_sum.get(), borrowed_sum.get())
        });
        for (owned, borrowed) in out {
            assert_eq!(owned, 45);
            assert_eq!(borrowed, 45, "only first elements summed");
        }
    }

    #[test]
    #[should_panic(expected = "rank 1 aborted: bad wedge batch")]
    fn abort_names_rank_and_reason_and_releases_peers() {
        World::new(3).run(|comm| {
            if comm.rank() == 1 {
                comm.abort(format_args!("bad wedge batch from rank {}", 0));
            }
            comm.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "rank 0 exploding")]
    fn peer_panic_poisons_barrier_and_root_cause_propagates() {
        // Rank 1 would hang in the barrier forever without poisoning; the
        // world must terminate and re-raise rank 0's original panic.
        World::new(2).run(|comm| {
            if comm.rank() == 0 {
                panic!("rank 0 exploding");
            }
            comm.barrier();
        });
    }
}
