//! Stress and property tests for the runtime: many ranks on few cores,
//! deep handler chains, container storms, repeated worlds.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tripoll_ygm::container::{DistBag, DistCountingSet, DistMap};
use tripoll_ygm::{Comm, CommConfig, Handler, World};

#[test]
fn oversubscribed_world_sixteen_ranks() {
    // Far more ranks than cores: the barrier must stay correct under
    // heavy preemption.
    let out = World::new(16).run(|comm| {
        let seen = Rc::new(Cell::new(0u64));
        let seen2 = seen.clone();
        let h = comm.register::<u64, _>(move |_c, v| {
            seen2.set(seen2.get() + v);
        });
        for round in 0..3u64 {
            for dest in 0..comm.nranks() {
                comm.send(dest, &h, &(round + 1));
            }
            comm.barrier();
        }
        seen.get()
    });
    // Each rank receives (1+2+3) from all 16 ranks.
    assert_eq!(out, vec![96; 16]);
}

#[test]
fn deep_handler_chains_across_barrier() {
    // Chains of length 1000 started by every rank; quiescence must wait
    // for all of them.
    let nranks = 4;
    let out = World::new(nranks).run(|comm| {
        let ends = Rc::new(Cell::new(0u64));
        let ends2 = ends.clone();
        let slot: Rc<RefCell<Option<Handler<u64>>>> = Rc::new(RefCell::new(None));
        let slot2 = slot.clone();
        let h = comm.register::<u64, _>(move |c: &Comm, hops| {
            if hops == 0 {
                ends2.set(ends2.get() + 1);
            } else {
                let h = slot2.borrow().expect("set");
                c.send((c.rank() + 3) % c.nranks(), &h, &(hops - 1));
            }
        });
        *slot.borrow_mut() = Some(h);
        comm.send((comm.rank() + 1) % comm.nranks(), &h, &1000u64);
        comm.barrier();
        comm.all_reduce_sum(ends.get())
    });
    assert_eq!(out, vec![nranks as u64; nranks]);
}

#[test]
fn container_storm() {
    // Map, bag and counting set all active at once with a tiny flush
    // threshold, interleaving three handler types in shared buffers.
    let config = CommConfig {
        flush_threshold: Some(48),
        ..Default::default()
    };
    let out = World::new(5).with_config(config).run_with_stats(|comm| {
        let map = DistMap::<u64, u64>::new_with_merge(comm, |a, b| *a += b);
        let bag = DistBag::<(u64, String)>::new(comm);
        let set = DistCountingSet::<String>::with_cache_capacity(comm, 4);
        for i in 0..200u64 {
            map.async_merge(comm, i % 37, 1);
            bag.async_add(comm, (i, format!("item-{i}")));
            set.increment(comm, format!("key-{}", i % 11));
        }
        comm.barrier();
        set.finalize(comm);

        let map_total = comm.all_reduce_sum(map.local().values().sum::<u64>());
        let bag_total = bag.global_len(comm);
        let set_total = comm.all_reduce_sum(set.local_counts().values().sum::<u64>());
        (map_total, bag_total, set_total)
    });
    for &(m, b, s) in &out.results {
        assert_eq!(m, 5 * 200);
        assert_eq!(b, 5 * 200);
        assert_eq!(s, 5 * 200);
    }
    // The tiny threshold must have produced many envelopes.
    assert!(out.total_stats().envelopes_remote > 50);
}

#[test]
fn repeated_worlds_do_not_leak_state() {
    for trial in 0..10 {
        let out = World::new(3).run(|comm| {
            let set = DistCountingSet::<u64>::new(comm);
            set.increment(comm, 7);
            set.gather(comm).first().map(|&(_, c)| c).unwrap_or(0)
        });
        assert_eq!(out, vec![3, 3, 3], "trial {trial}");
    }
}

#[test]
fn alternating_collectives_and_async_traffic() {
    let out = World::new(4).run(|comm| {
        let acc = Rc::new(Cell::new(0u64));
        let acc2 = acc.clone();
        let h = comm.register::<u64, _>(move |_c, v| {
            acc2.set(acc2.get() + v);
        });
        let mut checksum = 0u64;
        for round in 1..=5u64 {
            comm.send((comm.rank() + 1) % comm.nranks(), &h, &round);
            comm.barrier();
            checksum += comm.all_reduce_sum(acc.get());
            let gathered = comm.all_gather(&(comm.rank() as u64));
            assert_eq!(gathered, vec![0, 1, 2, 3]);
            let bc = comm.broadcast(&round, (round as usize) % comm.nranks());
            assert_eq!(bc, round);
        }
        checksum
    });
    // After round k, every rank holds sum 1..k; global = 4 * k(k+1)/2;
    // checksum = Σ_k 4·k(k+1)/2 = 4·(1+3+6+10+15) = 140.
    assert_eq!(out, vec![140; 4]);
}

#[test]
fn empty_world_barriers() {
    // Barriers with zero traffic, many times, all rank counts.
    for nranks in [1, 2, 7] {
        let out = World::new(nranks).run(|comm| {
            for _ in 0..20 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(out.len(), nranks);
    }
}

#[test]
fn large_payloads_cross_intact() {
    // Payloads far above the flush threshold ship as oversized envelopes.
    let out = World::new(2).run(|comm| {
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        let h = comm.register::<Vec<u64>, _>(move |_c, v| {
            got2.borrow_mut().push(v.len());
        });
        let big: Vec<u64> = (0..100_000u64).collect();
        comm.send((comm.rank() + 1) % 2, &h, &big);
        comm.barrier();
        let lens = got.borrow().clone();
        lens
    });
    for lens in out {
        assert_eq!(lens, vec![100_000]);
    }
}

#[test]
fn node_aggregation_preserves_semantics() {
    // Same all-to-all program, every node width: identical results.
    for ranks_per_node in [1usize, 2, 3, 4, 8] {
        let config = CommConfig {
            ranks_per_node,
            ..Default::default()
        };
        let out = World::new(8).with_config(config).run(|comm| {
            let sum = Rc::new(Cell::new(0u64));
            let sum2 = sum.clone();
            let h = comm.register::<u64, _>(move |_c, v| {
                sum2.set(sum2.get() + v);
            });
            for dest in 0..comm.nranks() {
                comm.send(dest, &h, &(comm.rank() as u64 + 1));
            }
            comm.barrier();
            comm.all_reduce_sum(sum.get())
        });
        // 8 senders x 8 receivers x avg 4.5 = 288 per rank; global 8x.
        assert_eq!(out, vec![8 * 36; 8], "ranks_per_node={ranks_per_node}");
    }
}

#[test]
fn node_aggregation_reduces_remote_envelopes() {
    // The paper's §5.4 fix: with 4 ranks per simulated node, buffers to a
    // remote node coalesce into one envelope — remote envelope count must
    // drop by roughly the node width.
    let run = |ranks_per_node: usize| {
        let config = CommConfig {
            ranks_per_node,
            ..Default::default()
        };
        World::new(8)
            .with_config(config)
            .run_with_stats(|comm| {
                let h = comm.register::<u64, _>(|_c, _v| {});
                for round in 0..50u64 {
                    for dest in 0..comm.nranks() {
                        comm.send(dest, &h, &round);
                    }
                    comm.barrier();
                }
            })
            .total_stats()
    };
    let flat = run(1);
    let aggregated = run(4);
    assert_eq!(flat.records_total(), aggregated.records_total());
    assert!(
        aggregated.envelopes_remote * 2 < flat.envelopes_remote,
        "aggregation should cut remote envelopes: {} vs {}",
        aggregated.envelopes_remote,
        flat.envelopes_remote
    );
}

#[test]
fn node_aggregation_with_odd_world_size() {
    // 7 ranks, 3 per node: the last node is partial; gateways at 0, 3, 6.
    let config = CommConfig {
        ranks_per_node: 3,
        ..Default::default()
    };
    let out = World::new(7).with_config(config).run(|comm| {
        let set = DistCountingSet::<u64>::new(comm);
        for k in 0..20u64 {
            set.increment(comm, k);
        }
        set.gather(comm)
    });
    for gathered in out {
        assert_eq!(gathered.len(), 20);
        for (_, c) in gathered {
            assert_eq!(c, 7);
        }
    }
}
