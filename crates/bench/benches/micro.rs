//! Criterion micro-benchmarks for the hot kernels underneath TriPoll:
//! wire codec, varints, send-buffer accumulation, merge-path
//! intersection, the deterministic hash, and counting-set increments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use tripoll_core::merge_path;
use tripoll_graph::OrderKey;
use tripoll_ygm::buffer::SendBuffer;
use tripoll_ygm::hash::hash64;
use tripoll_ygm::wire::{from_bytes, put_varint, to_bytes, Wire, WireReader};

fn bench_varint(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/varint");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("encode_1k_mixed", |b| {
        let values: Vec<u64> = (0..1024u64).map(|i| hash64(i) >> (i % 48)).collect();
        b.iter_batched(
            || Vec::with_capacity(16 * 1024),
            |mut buf| {
                for &v in &values {
                    put_varint(&mut buf, v);
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("decode_1k_mixed", |b| {
        let values: Vec<u64> = (0..1024u64).map(|i| hash64(i) >> (i % 48)).collect();
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        b.iter(|| {
            let mut r = WireReader::new(&buf);
            let mut sum = 0u64;
            while !r.is_empty() {
                sum = sum.wrapping_add(r.take_varint().unwrap());
            }
            sum
        })
    });
    group.finish();
}

type PushLikeMsg = (u64, u64, u64, u64, Vec<(u64, u64, u64)>);

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/codec");
    // A realistic push message: (p, q, meta_p, meta_pq, 64 candidates).
    let msg: PushLikeMsg = (
        12_345,
        67_890,
        42,
        7,
        (0..64).map(|i| (hash64(i), i * 3 + 1, i)).collect(),
    );
    group.throughput(Throughput::Elements(64));
    group.bench_function("push_message_roundtrip", |b| {
        b.iter(|| {
            let bytes = to_bytes(black_box(&msg));
            let back: PushLikeMsg = from_bytes(&bytes).unwrap();
            back.4.len()
        })
    });
    group.bench_function("string_payload_roundtrip", |b| {
        let payload: Vec<String> = (0..32)
            .map(|i| format!("site{i}.example/path/to/page"))
            .collect();
        b.iter(|| {
            let bytes = to_bytes(black_box(&payload));
            let back: Vec<String> = from_bytes(&bytes).unwrap();
            back.len()
        })
    });
    group.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("push_1k_records", |b| {
        b.iter_batched(
            SendBuffer::new,
            |mut buf| {
                for i in 0..1024u64 {
                    buf.push_record(3, &(i, i * 2));
                }
                buf.drain().0.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_merge_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_path");
    for size in [64usize, 1024] {
        let left: Vec<(u64, OrderKey)> = (0..size as u64)
            .map(|i| (i * 2, OrderKey::new(i * 2, i)))
            .collect();
        let right: Vec<(u64, OrderKey)> = (0..size as u64)
            .map(|i| (i * 3, OrderKey::new(i * 3, i)))
            .collect();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(format!("intersect_{size}"), |b| {
            b.iter(|| {
                let mut matches = 0u64;
                merge_path(
                    black_box(&left),
                    black_box(&right),
                    |l| l.1,
                    |r| r.1,
                    |_, _| matches += 1,
                );
                matches
            })
        });
    }
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash64");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("mix_4k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..4096u64 {
                acc ^= hash64(black_box(i));
            }
            acc
        })
    });
    group.finish();
}

fn bench_wire_encode_adjacency(c: &mut Criterion) {
    // The dominant wire object of a survey: an adjacency projection.
    let mut group = c.benchmark_group("wire/adjacency");
    let adj: Vec<(u64, u64, u64)> = (0..512).map(|i| (hash64(i), i, i % 7)).collect();
    group.throughput(Throughput::Elements(512));
    group.bench_function("encode_512_entries", |b| {
        b.iter_batched(
            || Vec::with_capacity(16 * 1024),
            |mut buf| {
                adj.encode(&mut buf);
                buf.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_varint,
    bench_codec,
    bench_buffer,
    bench_merge_path,
    bench_hash,
    bench_wire_encode_adjacency
);
criterion_main!(benches);
