//! Micro-benchmarks for the hot kernels underneath TriPoll: wire codec,
//! varints, send-buffer accumulation, merge-path intersection, the
//! deterministic hash — plus head-to-heads of the **materialized**
//! (pre-PR) vs **encode-once** (current) push encode paths, the
//! **owned** vs **cursor** (zero-copy) receive decode paths, and an
//! instrumented survey run.
//!
//! Besides the human-readable lines, the harness writes
//! `BENCH_micro.json` (schema `tripoll-bench-micro/v9`) so successive
//! PRs can track the perf trajectory mechanically: kernel ns/iter,
//! bytes sent, envelope counts, allocation-count proxies for the push
//! (encode) and recv (decode) paths, the intersection-kernel
//! comparison (scalar vs gallop vs blocked vs simd at four degree
//! skews, with deterministic compare counters), the SWAR varint-crack
//! ns/key proxy, the parallel batch-dispatch scaling (ns/batch at
//! 1/2/4 threads plus the 4-thread survey's merged compare counters),
//! the node-aggregation fan-out (pull bytes/candidate at rpn 1 vs 4,
//! multicast savings, overlapped-vs-inline flush handoff), the
//! resident service's snapshot-restart trade (cold ingest vs snapshot
//! load, resident vs from-scratch query dispatch), the incremental
//! ingest trade (delta survey vs full recount at 1% and 10% batch
//! sizes, with the delta's wire bytes per candidate), and wall time.
//! CI diffs the recv allocation proxies, columnar bytes/candidate, the
//! Auto and Simd kernels' compares/candidate, the parallel survey's
//! merged compares/candidate (0% drift — the deterministic-reduction
//! invariant), the multicast fan-out's bytes/candidate, the
//! deterministic snapshot byte size, and the delta survey's
//! bytes/candidate against the committed baseline (`bench_diff`).

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rayon::pool::ThreadPool;
use tripoll_core::{
    intersect_col, kernel_stats_take, merge_path, survey_push_pull_with, EngineMode,
    IntersectKernel, Parallelism, ResidentGraph, ResidentQuery, SurveyConfig,
};
use tripoll_graph::{build_dist_graph, DistGraph, EdgeList, OrderKey, Partition};
use tripoll_ygm::buffer::{BufferPool, SendBuffer};
use tripoll_ygm::hash::{hash64, FastMap};
use tripoll_ygm::wire::{
    encode_columns, encode_seq, from_bytes, put_varint, to_bytes, ColBatch, ColCursor, KeyBlock,
    Lazy, SeqCursor, Wire, WireEncode, WireReader, KEY_BLOCK_LEN,
};
use tripoll_ygm::{CommConfig, World};

/// Counts heap allocations so the push-path comparison can report an
/// allocation proxy alongside wall time.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System` plus a relaxed counter bump —
// every layout/pointer contract is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: layout is forwarded to `System.alloc` verbatim, so the
    // caller's `GlobalAlloc` obligations transfer directly.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: pointer and layout are forwarded to `System.dealloc`
    // verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: all arguments are forwarded to `System.realloc` verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

fn bench_varint(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/varint");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("encode_1k_mixed", |b| {
        let values: Vec<u64> = (0..1024u64).map(|i| hash64(i) >> (i % 48)).collect();
        b.iter_batched(
            || Vec::with_capacity(16 * 1024),
            |mut buf| {
                for &v in &values {
                    put_varint(&mut buf, v);
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("decode_1k_mixed", |b| {
        let values: Vec<u64> = (0..1024u64).map(|i| hash64(i) >> (i % 48)).collect();
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        b.iter(|| {
            let mut r = WireReader::new(&buf);
            let mut sum = 0u64;
            while !r.is_empty() {
                sum = sum.wrapping_add(r.take_varint().unwrap());
            }
            sum
        })
    });
    group.finish();
}

type PushLikeMsg = (u64, u64, u64, u64, Vec<(u64, u64, u64)>);

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/codec");
    // A realistic push message: (p, q, meta_p, meta_pq, 64 candidates).
    let msg: PushLikeMsg = (
        12_345,
        67_890,
        42,
        7,
        (0..64).map(|i| (hash64(i), i * 3 + 1, i)).collect(),
    );
    group.throughput(Throughput::Elements(64));
    group.bench_function("push_message_roundtrip", |b| {
        b.iter(|| {
            let bytes = to_bytes(black_box(&msg));
            let back: PushLikeMsg = from_bytes(&bytes).unwrap();
            back.4.len()
        })
    });
    group.bench_function("string_payload_roundtrip", |b| {
        let payload: Vec<String> = (0..32)
            .map(|i| format!("site{i}.example/path/to/page"))
            .collect();
        b.iter(|| {
            let bytes = to_bytes(black_box(&payload));
            let back: Vec<String> = from_bytes(&bytes).unwrap();
            back.len()
        })
    });
    group.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("push_1k_records", |b| {
        b.iter_batched(
            SendBuffer::new,
            |mut buf| {
                for i in 0..1024u64 {
                    buf.push_record(3, &(i, i * 2));
                }
                buf.drain().0.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_merge_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_path");
    for size in [64usize, 1024] {
        let left: Vec<(u64, OrderKey)> = (0..size as u64)
            .map(|i| (i * 2, OrderKey::new(i * 2, i)))
            .collect();
        let right: Vec<(u64, OrderKey)> = (0..size as u64)
            .map(|i| (i * 3, OrderKey::new(i * 3, i)))
            .collect();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(format!("intersect_{size}"), |b| {
            b.iter(|| {
                let mut matches = 0u64;
                merge_path(
                    black_box(&left),
                    black_box(&right),
                    |l| l.1,
                    |r| r.1,
                    |_, _| matches += 1,
                );
                matches
            })
        });
    }
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash64");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("mix_4k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..4096u64 {
                acc ^= hash64(black_box(i));
            }
            acc
        })
    });
    group.finish();
}

/// Adjacency-entry stand-in matching the DODGr layout the engines
/// serialize from: `(v, OrderKey, edge meta)`.
struct Entry {
    v: u64,
    degree: u64,
    em: u64,
}

fn synthetic_adjacency(len: usize) -> Vec<Entry> {
    (0..len as u64)
        .map(|i| Entry {
            v: hash64(i),
            degree: i + 1,
            em: i % 7,
        })
        .collect()
}

/// The pre-PR push path: materialize a `Vec<Candidate>` (plus metadata
/// clones) per wedge batch, then encode the owned message. Flushes use
/// the pooled drain, as production does, so the comparison isolates the
/// per-batch cost rather than buffer regrowth.
fn push_batches_materialized(
    adj: &[Entry],
    batches: usize,
    buf: &mut SendBuffer,
    pool: &mut BufferPool,
) -> usize {
    let mut total = 0;
    for b in 0..batches {
        let candidates: Vec<(u64, u64, u64)> = adj.iter().map(|e| (e.v, e.degree, e.em)).collect();
        total += buf.push_record(3, &(b as u64, b as u64 + 1, 42u64, 7u64, candidates));
        if buf.len() > FLUSH_BYTES {
            let (data, _) = buf.drain_pooled(pool);
            pool.put(data);
        }
    }
    total
}

/// The current push path: candidates stream straight from the adjacency
/// slice, metadata by reference, via the borrowed encoders.
fn push_batches_encode_once(
    adj: &[Entry],
    batches: usize,
    buf: &mut SendBuffer,
    pool: &mut BufferPool,
) -> usize {
    let mut total = 0;
    for b in 0..batches {
        total += buf.push_record_with(3, |out| {
            (
                b as u64,
                b as u64 + 1,
                &42u64,
                &7u64,
                encode_seq(adj, |e: &Entry, out| {
                    e.v.encode(out);
                    e.degree.encode(out);
                    e.em.encode(out);
                }),
            )
                .encode_wire(out)
        });
        if buf.len() > FLUSH_BYTES {
            let (data, _) = buf.drain_pooled(pool);
            pool.put(data);
        }
    }
    total
}

/// Measurement of one push-path variant.
struct PathRun {
    allocs: u64,
    ns: f64,
    bytes: usize,
}

fn measure_path(f: impl Fn(&mut SendBuffer, &mut BufferPool) -> usize) -> PathRun {
    // Warm-up pass primes the buffer pool so the measured pass appends
    // into steady-state (recycled) storage, exactly as a survey phase
    // does between flushes — the measurement isolates per-batch cost.
    let mut buf = SendBuffer::new();
    let mut pool = BufferPool::new(8, FLUSH_BYTES * 4);
    f(&mut buf, &mut pool);
    let (data, _) = buf.drain_pooled(&mut pool);
    pool.put(data);
    let before_allocs = allocs_now();
    let start = Instant::now();
    let bytes = f(&mut buf, &mut pool);
    let ns = start.elapsed().as_nanos() as f64;
    let allocs = allocs_now() - before_allocs;
    PathRun { allocs, ns, bytes }
}

const PUSH_BATCHES: usize = 4096;
const PUSH_CANDIDATES: usize = 64;
/// Bench stand-in for the communicator's flush threshold.
const FLUSH_BYTES: usize = 1 << 20;

/// Old-vs-new comparison of the wedge-batch encode path.
fn compare_push_paths() -> (PathRun, PathRun) {
    let adj = synthetic_adjacency(PUSH_CANDIDATES);
    let old = measure_path(|buf, pool| push_batches_materialized(&adj, PUSH_BATCHES, buf, pool));
    let new = measure_path(|buf, pool| push_batches_encode_once(&adj, PUSH_BATCHES, buf, pool));
    println!(
        "push_path/materialized                    {:>12.1} ns/batch  {:>8} allocs  {:>9} bytes",
        old.ns / PUSH_BATCHES as f64,
        old.allocs,
        old.bytes
    );
    println!(
        "push_path/encode_once                     {:>12.1} ns/batch  {:>8} allocs  {:>9} bytes",
        new.ns / PUSH_BATCHES as f64,
        new.allocs,
        new.bytes
    );
    assert_eq!(old.bytes, new.bytes, "wire images must be byte-identical");
    (old, new)
}

/// Builds the receive side's input: `PUSH_BATCHES` wedge-batch records
/// concatenated, exactly as one envelope's payload lays them out
/// (handler-id varints excluded — they are identical for both decode
/// paths and not part of the comparison).
fn encoded_push_stream(adj: &[Entry]) -> Vec<u8> {
    let mut buf = Vec::new();
    for b in 0..PUSH_BATCHES {
        (
            b as u64,
            b as u64 + 1,
            &42u64,
            &7u64,
            encode_seq(adj, |e: &Entry, out| {
                e.v.encode(out);
                e.degree.encode(out);
                e.em.encode(out);
            }),
        )
            .encode_wire(&mut buf);
    }
    buf
}

/// The pre-PR receive path: decode an owned message (materializing the
/// `Vec<Candidate>`), then walk the candidates. Every 8th candidate
/// counts as a "triangle match" whose metadata is actually read.
fn decode_batches_owned(buf: &[u8]) -> u64 {
    let mut r = WireReader::new(buf);
    let mut acc = 0u64;
    while !r.is_empty() {
        let (p, q, mp, mpq, cands): PushLikeMsg = Wire::decode(&mut r).expect("owned decode");
        acc = acc
            .wrapping_add(p)
            .wrapping_add(q)
            .wrapping_add(mp)
            .wrapping_add(mpq);
        for (i, c) in cands.iter().enumerate() {
            acc = acc.wrapping_add(c.0).wrapping_add(c.1);
            if i.is_multiple_of(8) {
                acc = acc.wrapping_add(c.2);
            }
        }
    }
    acc
}

/// The current receive path: scalars decode eagerly, candidates stream
/// through a [`SeqCursor`] straight off the buffer, and per-candidate
/// metadata is a [`Lazy`] byte range decoded only on the simulated
/// matches — zero heap allocations end to end.
fn decode_batches_cursor(buf: &[u8]) -> u64 {
    let mut r = WireReader::new(buf);
    let mut acc = 0u64;
    while !r.is_empty() {
        let p = u64::decode(&mut r).expect("p");
        let q = u64::decode(&mut r).expect("q");
        let mp = u64::decode(&mut r).expect("meta_p");
        let mpq = u64::decode(&mut r).expect("meta_pq");
        acc = acc
            .wrapping_add(p)
            .wrapping_add(q)
            .wrapping_add(mp)
            .wrapping_add(mpq);
        let mut cur = SeqCursor::begin(&mut r).expect("seq prefix");
        let mut i = 0usize;
        while let Some(item) = cur.next_with(|r| {
            let v = u64::decode(r)?;
            let d = u64::decode(r)?;
            let em = Lazy::<u64>::capture(r)?;
            Ok((v, d, em))
        }) {
            let (v, d, em) = item.expect("candidate");
            acc = acc.wrapping_add(v).wrapping_add(d);
            if i.is_multiple_of(8) {
                acc = acc.wrapping_add(em.get().expect("match meta"));
            }
            i += 1;
        }
    }
    acc
}

/// Old-vs-new comparison of the wedge-batch decode (receive) path.
fn compare_recv_paths() -> (PathRun, PathRun) {
    let adj = synthetic_adjacency(PUSH_CANDIDATES);
    let buf = encoded_push_stream(&adj);
    // Warm-up + differential check: both paths must read every value
    // identically before either is timed.
    assert_eq!(
        decode_batches_owned(&buf),
        decode_batches_cursor(&buf),
        "decode paths disagree"
    );
    let measure = |f: &dyn Fn(&[u8]) -> u64| {
        let before_allocs = allocs_now();
        let start = Instant::now();
        let acc = black_box(f(&buf));
        let ns = start.elapsed().as_nanos() as f64;
        let allocs = allocs_now() - before_allocs;
        black_box(acc);
        PathRun {
            allocs,
            ns,
            bytes: buf.len(),
        }
    };
    let old = measure(&decode_batches_owned);
    let new = measure(&decode_batches_cursor);
    println!(
        "recv_path/materialized                    {:>12.1} ns/batch  {:>8} allocs  {:>9} bytes",
        old.ns / PUSH_BATCHES as f64,
        old.allocs,
        old.bytes
    );
    println!(
        "recv_path/cursor                          {:>12.1} ns/batch  {:>8} allocs  {:>9} bytes",
        new.ns / PUSH_BATCHES as f64,
        new.allocs,
        new.bytes
    );
    // Deliberately NOT asserted to be zero here: the harness records
    // reality in BENCH_micro.json and CI's bench_diff gate enforces the
    // policy (committed baseline 0 allocs ⇒ any allocation fails). A
    // hard assert would kill the bench before the report is written,
    // leaving the gate nothing to diagnose.
    if new.allocs > 0 {
        println!(
            "WARNING: cursor receive path allocated {} times (expected 0)",
            new.allocs
        );
    }
    (old, new)
}

/// Hub-scale adjacency for the layout comparison: vertex ids spread by
/// hash (multi-byte varints, as scrambled R-MAT ids are) and degrees in
/// the thousands (two-byte varints raw, one-byte deltas columnar) —
/// the regime where the SoA layout's delta-coded degree column pays.
fn hub_adjacency(len: usize) -> Vec<Entry> {
    (0..len as u64)
        .map(|i| Entry {
            v: hash64(i),
            degree: 4096 + i * 3,
            em: i % 7,
        })
        .collect()
}

/// Encodes the columnar push stream (headers + `encode_columns`
/// candidates, as the production sender does).
fn layout_stream_columnar(adj: &[Entry]) -> Vec<u8> {
    let mut buf = Vec::new();
    for b in 0..PUSH_BATCHES {
        (
            b as u64,
            b as u64 + 1,
            &42u64,
            &7u64,
            encode_columns(
                adj,
                |e: &Entry| e.v,
                |e| e.degree,
                |e, out| e.em.encode(out),
            ),
        )
            .encode_wire(&mut buf);
    }
    buf
}

/// Columnar scalar-walk mirror of [`decode_batches_cursor`]: key
/// columns walked one element at a time, metadata column touched only
/// on the simulated matches (every 8th candidate). This was the
/// pre-kernel production access pattern — kept as the "before" side of
/// the blocked-decode comparison (it was measurably *slower* than the
/// interleaved decode, the ROADMAP regression the blocked kernel
/// fixes).
fn decode_batches_columnar_scalar(buf: &[u8]) -> u64 {
    let mut r = WireReader::new(buf);
    let mut acc = 0u64;
    while !r.is_empty() {
        let p = u64::decode(&mut r).expect("p");
        let q = u64::decode(&mut r).expect("q");
        let mp = u64::decode(&mut r).expect("meta_p");
        let mpq = u64::decode(&mut r).expect("meta_pq");
        acc = acc
            .wrapping_add(p)
            .wrapping_add(q)
            .wrapping_add(mp)
            .wrapping_add(mpq);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).expect("columns");
        while let Some(k) = cur.keys.next_key() {
            let k = k.expect("key");
            acc = acc.wrapping_add(k.v).wrapping_add(k.degree);
            if k.idx.is_multiple_of(8) {
                acc = acc.wrapping_add(cur.metas.get(k.idx).expect("match meta"));
            }
        }
    }
    acc
}

/// The current columnar decode proxy: key columns decoded through the
/// blocked kernel's [`KeyBlock`] bulk walk ([`ColKeys::next_block`]),
/// so the varint-decode loop runs tight over each column and the
/// consumer scans stack arrays — the access pattern the
/// `BlockedMerge`/`Auto` production kernel uses.
///
/// [`ColKeys::next_block`]: tripoll_ygm::wire::ColKeys::next_block
fn decode_batches_columnar(buf: &[u8]) -> u64 {
    let mut r = WireReader::new(buf);
    let mut acc = 0u64;
    let mut block = KeyBlock::new();
    while !r.is_empty() {
        let p = u64::decode(&mut r).expect("p");
        let q = u64::decode(&mut r).expect("q");
        let mp = u64::decode(&mut r).expect("meta_p");
        let mpq = u64::decode(&mut r).expect("meta_pq");
        acc = acc
            .wrapping_add(p)
            .wrapping_add(q)
            .wrapping_add(mp)
            .wrapping_add(mpq);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).expect("columns");
        while let Some(res) = cur.keys.next_block(&mut block) {
            res.expect("key block");
            for i in 0..block.len {
                acc = acc.wrapping_add(block.v[i]).wrapping_add(block.degree[i]);
                let idx = block.base + i;
                if idx.is_multiple_of(8) {
                    acc = acc.wrapping_add(cur.metas.get(idx).expect("match meta"));
                }
            }
        }
    }
    acc
}

/// Measurement of one layout: wire volume plus steady-state encode and
/// decode cost. The columnar layout also carries the scalar-walk
/// decode measurement (the pre-kernel "before" path).
struct LayoutRun {
    bytes: usize,
    encode: PathRun,
    decode: PathRun,
    decode_scalar: Option<PathRun>,
}

/// Head-to-head of the wedge-batch wire layouts on hub-scale batches:
/// bytes per candidate (the §5.4 communication-volume story) and the
/// encode/decode proxies that CI gates.
fn compare_batch_layouts() -> (LayoutRun, LayoutRun) {
    let adj = hub_adjacency(PUSH_CANDIDATES);
    // Differential check before anything is timed: both layouts carry
    // the same logical stream, and both columnar walks (scalar and
    // blocked) read every value identically.
    // The interleaved side reuses the recv-path stream/decoder (same
    // wire format, same every-8th match rule).
    let int_stream = encoded_push_stream(&adj);
    let col_stream = layout_stream_columnar(&adj);
    assert_eq!(
        decode_batches_cursor(&int_stream),
        decode_batches_columnar(&col_stream),
        "layouts disagree"
    );
    assert_eq!(
        decode_batches_columnar_scalar(&col_stream),
        decode_batches_columnar(&col_stream),
        "columnar walks disagree"
    );

    let encode_with = |columnar: bool| {
        measure_path(|buf, pool| {
            let mut total = 0;
            for b in 0..PUSH_BATCHES {
                total += buf.push_record_with(3, |out| {
                    if columnar {
                        (
                            b as u64,
                            b as u64 + 1,
                            &42u64,
                            &7u64,
                            encode_columns(
                                &adj,
                                |e: &Entry| e.v,
                                |e| e.degree,
                                |e, out| e.em.encode(out),
                            ),
                        )
                            .encode_wire(out)
                    } else {
                        (
                            b as u64,
                            b as u64 + 1,
                            &42u64,
                            &7u64,
                            encode_seq(&adj, |e: &Entry, out| {
                                e.v.encode(out);
                                e.degree.encode(out);
                                e.em.encode(out);
                            }),
                        )
                            .encode_wire(out)
                    }
                });
                if buf.len() > FLUSH_BYTES {
                    let (data, _) = buf.drain_pooled(pool);
                    pool.put(data);
                }
            }
            total
        })
    };
    let decode_with = |f: &dyn Fn(&[u8]) -> u64, buf: &[u8]| {
        let _warm = black_box(f(buf));
        let before_allocs = allocs_now();
        let start = Instant::now();
        let acc = black_box(f(buf));
        let ns = start.elapsed().as_nanos() as f64;
        let allocs = allocs_now() - before_allocs;
        black_box(acc);
        PathRun {
            allocs,
            ns,
            bytes: buf.len(),
        }
    };

    let interleaved = LayoutRun {
        bytes: int_stream.len(),
        encode: encode_with(false),
        decode: decode_with(&decode_batches_cursor, &int_stream),
        decode_scalar: None,
    };
    let columnar = LayoutRun {
        bytes: col_stream.len(),
        encode: encode_with(true),
        decode: decode_with(&decode_batches_columnar, &col_stream),
        decode_scalar: Some(decode_with(&decode_batches_columnar_scalar, &col_stream)),
    };
    let per_cand = |bytes: usize| bytes as f64 / (PUSH_BATCHES * PUSH_CANDIDATES) as f64;
    for (name, run) in [("interleaved", &interleaved), ("columnar", &columnar)] {
        println!(
            "batch_layout/{name:<12} {:>7.2} B/cand  encode {:>8.1} ns/batch {:>4} allocs  decode {:>8.1} ns/batch {:>4} allocs",
            per_cand(run.bytes),
            run.encode.ns / PUSH_BATCHES as f64,
            run.encode.allocs,
            run.decode.ns / PUSH_BATCHES as f64,
            run.decode.allocs,
        );
    }
    if let Some(scalar) = &columnar.decode_scalar {
        println!(
            "batch_layout/columnar_scalar_walk (before) decode {:>8.1} ns/batch {:>4} allocs  -> blocked {:>8.1} ns/batch",
            scalar.ns / PUSH_BATCHES as f64,
            scalar.allocs,
            columnar.decode.ns / PUSH_BATCHES as f64,
        );
    }
    if columnar.bytes >= interleaved.bytes {
        println!(
            "WARNING: columnar layout did not shrink the stream ({} vs {})",
            columnar.bytes, interleaved.bytes
        );
    }
    if columnar.decode.allocs > 0 {
        println!(
            "WARNING: columnar recv path allocated {} times (expected 0)",
            columnar.decode.allocs
        );
    }
    (interleaved, columnar)
}

/// One kernel's measurement at one skew.
struct KernelRun {
    name: &'static str,
    ns_per_candidate: f64,
    compares_per_candidate: f64,
    allocs: u64,
    matches_per_iter: u64,
}

/// One skew point of the intersection-kernel comparison.
struct SkewRun {
    name: &'static str,
    left: usize,
    right: usize,
    runs: Vec<KernelRun>,
}

/// Passes per (skew, kernel) measurement.
const KERNEL_ITERS: usize = 64;

/// Head-to-head of the intersection kernels over a real columnar frame
/// (the production shape: keys decoded off the wire, right side in
/// storage, metadata decoded on match only) at four degree skews (balanced, 10:1, 1000:1 and its reverse).
/// The compare counters are deterministic — CI gates the Auto and Simd
/// kernels' compares-per-candidate — while ns/candidate is context.
fn compare_intersect_kernels() -> (Vec<SkewRun>, f64, f64) {
    let mut skews = Vec::new();
    let (mut auto_compares, mut auto_candidates) = (0u64, 0u64);
    let (mut simd_compares, mut simd_candidates) = (0u64, 0u64);
    for (name, left_n, right_n) in [
        ("balanced", 4096usize, 4096usize),
        ("skew_10_1", 512, 5120),
        ("skew_1000_1", 64, 64_000),
        ("skew_1_1000", 64_000, 64),
    ] {
        // The denser side holds every even value; the sparser side
        // spreads across that range, alternating hits (even values)
        // and off-by-one misses (odd values). Key order follows the
        // value (degree = value).
        let (dense_n, sparse_n) = (left_n.max(right_n), left_n.min(right_n));
        let dense: Vec<u64> = (0..dense_n as u64).map(|i| 2 * i).collect();
        let step = 2 * (dense_n / sparse_n) as u64;
        let sparse: Vec<u64> = (0..sparse_n as u64).map(|i| i * step + (i % 2)).collect();
        let (left_vals, right_vals) = if right_n >= left_n {
            (sparse, dense)
        } else {
            (dense, sparse)
        };
        let right: Vec<(u64, OrderKey)> = right_vals
            .iter()
            .map(|&v| (v, OrderKey::new(v, v)))
            .collect();
        let left: Vec<(u64, u64)> = left_vals.iter().map(|&v| (v, v)).collect();
        let frame = to_bytes(&ColBatch::<u64>(
            left.iter()
                .enumerate()
                .map(|(i, &(v, d))| (v, d, i as u64))
                .collect(),
        ));
        // Oracle: the expected match count per pass.
        let left_keys: Vec<(u64, OrderKey)> = left
            .iter()
            .map(|&(v, d)| (v, OrderKey::new(v, d)))
            .collect();
        let mut expected = 0u64;
        merge_path(&left_keys, &right, |l| l.1, |r| r.1, |_, _| expected += 1);
        assert!(expected > 0, "skew {name} must produce matches");

        let mut runs = Vec::new();
        for (kname, kernel) in [
            ("scalar", IntersectKernel::MergeScalar),
            ("gallop", IntersectKernel::Gallop),
            ("blocked", IntersectKernel::BlockedMerge),
            ("simd", IntersectKernel::Simd),
            ("auto", IntersectKernel::Auto),
        ] {
            let one_pass = |acc: &mut u64, matches: &mut u64| {
                let mut r = WireReader::new(&frame);
                let cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).expect("frame");
                let ColCursor {
                    mut keys,
                    mut metas,
                } = cur;
                intersect_col(
                    kernel,
                    &mut keys,
                    &right,
                    |e| e.1,
                    |k, e| {
                        // Production pattern: metadata decoded on match.
                        *acc = acc.wrapping_add(metas.get(k.idx)?).wrapping_add(e.0);
                        *matches += 1;
                        Ok(())
                    },
                )
                .expect("intersect");
            };
            // Warm-up, then a counted, timed, alloc-metered run.
            let (mut acc, mut warm_matches) = (0u64, 0u64);
            one_pass(&mut acc, &mut warm_matches);
            assert_eq!(warm_matches, expected, "kernel {kname} disagrees at {name}");
            let _ = kernel_stats_take();
            let mut matches = 0u64;
            let before_allocs = allocs_now();
            let start = Instant::now();
            for _ in 0..KERNEL_ITERS {
                one_pass(&mut acc, &mut matches);
            }
            let ns = start.elapsed().as_nanos() as f64;
            let allocs = allocs_now() - before_allocs;
            black_box(acc);
            let ks = kernel_stats_take();
            let candidates = (left_n * KERNEL_ITERS) as u64;
            if kernel == IntersectKernel::Auto {
                auto_compares += ks.compares;
                auto_candidates += candidates;
            }
            if kernel == IntersectKernel::Simd {
                simd_compares += ks.compares;
                simd_candidates += candidates;
            }
            runs.push(KernelRun {
                name: kname,
                ns_per_candidate: ns / candidates as f64,
                compares_per_candidate: ks.compares as f64 / candidates as f64,
                allocs,
                matches_per_iter: matches / KERNEL_ITERS as u64,
            });
        }
        for r in &runs {
            println!(
                "intersect_kernel/{name:<12}/{:<8} {:>8.2} ns/cand  {:>8.2} compares/cand  {:>4} allocs  {:>6} matches",
                r.name, r.ns_per_candidate, r.compares_per_candidate, r.allocs, r.matches_per_iter
            );
            if r.allocs > 0 {
                println!(
                    "WARNING: kernel {} allocated {} times at {} (expected 0)",
                    r.name, r.allocs, name
                );
            }
        }
        skews.push(SkewRun {
            name,
            left: left_n,
            right: right_n,
            runs,
        });
    }
    // The headline claim: at 1000:1 skew the gallop or blocked kernel
    // must beat the scalar merge on ns/candidate.
    if let Some(s) = skews.iter().find(|s| s.name == "skew_1000_1") {
        let ns_of = |n: &str| {
            s.runs
                .iter()
                .find(|r| r.name == n)
                .map(|r| r.ns_per_candidate)
        };
        let (scalar, gallop, blocked) = (
            ns_of("scalar").unwrap(),
            ns_of("gallop").unwrap(),
            ns_of("blocked").unwrap(),
        );
        if gallop.min(blocked) >= scalar {
            println!(
                "WARNING: neither gallop ({gallop:.2}) nor blocked ({blocked:.2}) beat scalar \
                 ({scalar:.2}) ns/candidate at 1000:1 skew"
            );
        }
    }
    // The PR-5 claim: the SIMD kernel's packed lane skips should beat
    // the scalar blocked merge at the shapes where in-block skipping
    // dominates (balanced and the reverse skew). Wall noise is real on
    // CI boxes, so this warns rather than gates — the deterministic
    // backstop is the varint-crack ns/key proxy and the gated compare
    // counters.
    for shape in ["balanced", "skew_1_1000"] {
        if let Some(s) = skews.iter().find(|s| s.name == shape) {
            let ns_of = |n: &str| {
                s.runs
                    .iter()
                    .find(|r| r.name == n)
                    .map(|r| r.ns_per_candidate)
            };
            let (simd, blocked) = (ns_of("simd").unwrap(), ns_of("blocked").unwrap());
            if simd >= blocked {
                println!(
                    "WARNING: simd ({simd:.2}) did not beat blocked ({blocked:.2}) \
                     ns/candidate at {shape}"
                );
            }
        }
    }
    (
        skews,
        auto_compares as f64 / auto_candidates as f64,
        simd_compares as f64 / simd_candidates as f64,
    )
}

/// Keys decoded per varint-crack measurement pass.
const CRACK_KEYS: usize = 1 << 16;

/// Measurement of the SWAR varint cracker against the per-byte scalar
/// decode loop it replaced in the block paths.
struct CrackRun {
    scalar_ns_per_key: f64,
    crack_ns_per_key: f64,
}

/// Head-to-head of block key decoding: the pre-PR per-byte scalar
/// LEB128 loop vs [`WireReader::take_varints`] (SWAR terminator find +
/// shift-and-mask lane fold) over the same mixed-width key column —
/// the deterministic ns/key proxy behind the SIMD/SWAR decode claim.
fn compare_varint_crack() -> CrackRun {
    // The vertex-column profile of a massive-scale graph: scrambled
    // ids whose encoded widths (2–6 bytes) vary unpredictably key to
    // key — the regime where the per-byte loop pays a mispredicted
    // continuation branch per key while the cracker's terminator find
    // is branchless — plus a sprinkle of full-width 64-bit hashes
    // exercising the 9–10-byte scalar fallback inside the cracked
    // path.
    let values: Vec<u64> = (0..CRACK_KEYS as u64)
        .map(|i| {
            let h = hash64(i);
            if i % 32 == 0 {
                h
            } else {
                h >> (24 + (h >> 58) % 5 * 7)
            }
        })
        .collect();
    let mut col = Vec::new();
    for &v in &values {
        put_varint(&mut col, v);
    }
    // The reference: the checked per-byte loop `ColKeys::next_block`
    // used to run — `take_varint`'s pre-cracker body over a
    // `WireReader`, reproduced faithfully (bounds-checked byte reads,
    // overflow guards) so the "before" stays measurable after the
    // production path switched to the cracker.
    let scalar_pass = |col: &[u8]| -> u64 {
        let mut r = WireReader::new(col);
        let mut acc = 0u64;
        while !r.is_empty() {
            let mut value = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = r.take_u8().expect("in-bounds varint byte");
                assert!(shift != 63 || byte <= 1, "varint overflow");
                value |= u64::from(byte & 0x7f) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
                assert!(shift <= 63, "varint overflow");
            }
            acc = acc.wrapping_add(value);
        }
        acc
    };
    let crack_pass = |col: &[u8]| -> u64 {
        let mut r = WireReader::new(col);
        let mut block = [0u64; KEY_BLOCK_LEN];
        let mut acc = 0u64;
        let mut left = CRACK_KEYS;
        while left > 0 {
            let take = left.min(KEY_BLOCK_LEN);
            r.take_varints(&mut block[..take]).expect("crack decode");
            for &v in &block[..take] {
                acc = acc.wrapping_add(v);
            }
            left -= take;
        }
        acc
    };
    assert_eq!(
        scalar_pass(&col),
        crack_pass(&col),
        "decoders disagree on the key column"
    );
    const PASSES: usize = 64;
    let measure = |f: &dyn Fn(&[u8]) -> u64| -> f64 {
        let _warm = black_box(f(&col));
        let start = Instant::now();
        for _ in 0..PASSES {
            black_box(f(&col));
        }
        start.elapsed().as_nanos() as f64 / (PASSES * CRACK_KEYS) as f64
    };
    let run = CrackRun {
        scalar_ns_per_key: measure(&scalar_pass),
        crack_ns_per_key: measure(&crack_pass),
    };
    println!(
        "varint_crack/scalar_block_decode          {:>12.3} ns/key",
        run.scalar_ns_per_key
    );
    println!(
        "varint_crack/swar_cracker                 {:>12.3} ns/key  ({:+.1}%)",
        run.crack_ns_per_key,
        100.0 * (run.crack_ns_per_key / run.scalar_ns_per_key - 1.0)
    );
    if run.crack_ns_per_key >= run.scalar_ns_per_key {
        println!(
            "WARNING: the SWAR cracker ({:.3}) did not beat the scalar block decode ({:.3}) ns/key",
            run.crack_ns_per_key, run.scalar_ns_per_key
        );
    }
    run
}

/// Batches per parallel-dispatch measurement pass.
const PD_BATCHES: usize = 256;
/// Candidates per batch — hub scale, where batch parallelism pays.
const PD_CANDS: usize = 512;
/// Right-side (stored adjacency) length per batch.
const PD_RIGHT: usize = 16_384;
/// Timed passes over the full batch set per thread count.
const PD_PASSES: usize = 8;

/// Measurement of the multi-threaded batch dispatch.
struct ParallelDispatch {
    /// `(threads, ns_per_batch)` at 1, 2 and 4 threads.
    threads: Vec<(usize, f64)>,
    /// Merged compares/candidate of a 4-thread Push-Pull survey.
    par_compares_per_candidate: f64,
    /// Same survey, serial — must match the parallel value exactly.
    serial_compares_per_candidate: f64,
}

/// One rank's merged kernel counters plus the triangle count for the
/// instrumented R-MAT survey at the given thread setting.
fn survey_merged_counters(threads: Parallelism) -> (u64, u64, u64) {
    let edges = tripoll_gen::rmat_edges(&tripoll_gen::RmatConfig::graph500(10, 42));
    let list = EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    let out = World::new(4).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g: DistGraph<(), ()> = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        let _ = kernel_stats_take();
        let count = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let c2 = count.clone();
        survey_push_pull_with(
            comm,
            &g,
            SurveyConfig::default().with_threads(threads),
            move |_c, _tm| c2.set(c2.get() + 1),
        );
        let ks = kernel_stats_take();
        (
            comm.all_reduce_sum(ks.compares),
            comm.all_reduce_sum(ks.candidates),
            comm.all_reduce_sum(count.get()),
        )
    });
    assert!(out.iter().all(|&o| o == out[0]), "ranks disagree");
    out[0]
}

/// Scaling of the work-stealing batch dispatch: the same hub-scale
/// batch set (columnar candidate frames intersected against a stored
/// adjacency, the production `Task` shape) processed by dedicated
/// pools of 1, 2 and 4 threads, plus the end-to-end determinism
/// record: merged compares/candidate of a 4-thread survey vs its
/// serial twin (CI gates the parallel value at 0% drift).
fn compare_parallel_dispatch() -> ParallelDispatch {
    let right: Vec<(u64, OrderKey)> = (0..PD_RIGHT as u64)
        .map(|i| (2 * i, OrderKey::new(2 * i, 2 * i)))
        .collect();
    struct PdTask {
        frame: Vec<u8>,
        checksum: u64,
    }
    let step = 2 * (PD_RIGHT / PD_CANDS) as u64;
    let mut tasks: Vec<PdTask> = (0..PD_BATCHES as u64)
        .map(|b| {
            // Alternating hits and off-by-one misses, phase-shifted per
            // batch so frames are distinct.
            let keys: Vec<(u64, u64, u64)> = (0..PD_CANDS as u64)
                .map(|i| {
                    let v = i * step + ((i + b) % 2);
                    (v, v, i)
                })
                .collect();
            PdTask {
                frame: to_bytes(&ColBatch::<u64>(keys)),
                checksum: 0,
            }
        })
        .collect();
    let process = |t: &mut PdTask| {
        let mut r = WireReader::new(&t.frame);
        let ColCursor {
            mut keys,
            mut metas,
        }: ColCursor<'_, u64> = ColCursor::begin(&mut r).expect("frame");
        let mut acc = 0u64;
        intersect_col(
            IntersectKernel::Auto,
            &mut keys,
            &right,
            |e| e.1,
            |k, e| {
                // Production pattern: metadata decoded on match.
                acc = acc.wrapping_add(metas.get(k.idx)?).wrapping_add(e.0);
                Ok(())
            },
        )
        .expect("intersect");
        t.checksum = acc;
    };

    let mut threads = Vec::new();
    let mut reference: Option<u64> = None;
    for t in [1usize, 2, 4] {
        // A dedicated pool per thread count (the caller participates,
        // so `t` threads = `t - 1` workers), sidestepping the global
        // pool's host-dependent width.
        let pool = ThreadPool::new(t - 1);
        pool.run_mut(&mut tasks, |task| process(task)); // warm-up
        let checksum: u64 = tasks.iter().map(|task| task.checksum).sum();
        match reference {
            None => reference = Some(checksum),
            Some(r) => assert_eq!(r, checksum, "dispatch diverged at {t} threads"),
        }
        let start = Instant::now();
        for _ in 0..PD_PASSES {
            pool.run_mut(&mut tasks, |task| process(task));
        }
        let ns = start.elapsed().as_nanos() as f64 / (PD_PASSES * PD_BATCHES) as f64;
        println!("parallel_dispatch/threads_{t}                {ns:>10.1} ns/batch");
        threads.push((t, ns));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t1 = threads[0].1;
    for &(t, ns) in &threads[1..] {
        let speedup = t1 / ns;
        let target = if t == 2 { 1.7 } else { 3.0 };
        println!("parallel_dispatch/speedup_{t}                {speedup:>10.2} x");
        if speedup < target {
            println!(
                "WARNING: {t}-thread dispatch speedup {speedup:.2}x is below the {target}x \
                 target (host has {cores} core(s); scaling needs >= {t})"
            );
        }
    }
    // Reset the caller's thread-local tallies the dispatch runs above
    // accumulated before the gated survey measurement.
    let _ = kernel_stats_take();

    let serial = survey_merged_counters(Parallelism::Serial);
    let parallel = survey_merged_counters(Parallelism::Threads(4));
    assert_eq!(
        serial, parallel,
        "4-thread survey diverged from serial (compares, candidates, triangles)"
    );
    let cpc = |(compares, candidates, _): (u64, u64, u64)| compares as f64 / candidates as f64;
    println!(
        "parallel_dispatch/survey_compares_per_cand serial {:>8.4}  threads4 {:>8.4}",
        cpc(serial),
        cpc(parallel)
    );
    ParallelDispatch {
        threads,
        par_compares_per_candidate: cpc(parallel),
        serial_compares_per_candidate: cpc(serial),
    }
}

/// Node-aggregation scale: vertices whose candidate projection is
/// fanned out, destination ranks per fan-out (one remote node), and
/// candidates per projection — the §4.4 pull-delivery shape.
const NA_VERTS: usize = 256;
const NA_FANOUT: usize = 4;
const NA_CANDS: usize = 128;
/// Sends timed per overlap setting in the flush-handoff comparison.
const NA_SENDS: usize = 8192;

/// Measurement of the node-aggregation machinery: the pull fan-out's
/// wire bytes per delivered candidate with per-rank copies (rpn = 1)
/// vs multicast sections (rpn = 4), plus the overlapped-vs-inline
/// transport handoff timing.
struct NodeAggRun {
    flat_bytes_remote: u64,
    agg_bytes_remote: u64,
    flat_bytes_per_candidate: f64,
    agg_bytes_per_candidate: f64,
    records_multicast: u64,
    multicast_bytes_saved: u64,
    inline_ns_per_send: f64,
    overlap_ns_per_send: f64,
}

/// Emulates the §4.4 pull fan-out at the comm layer: rank 0 sends each
/// vertex's candidate projection to every rank of one remote node via
/// `send_to_many`, at rpn = 1 (per-rank payload copies) vs rpn = 4
/// (one multicast section per node). The gated metric is the rpn = 4
/// wire bytes per delivered candidate — deterministic, since every
/// byte is counted at send time. The overlapped-flush handoff is timed
/// as wall-clock context (not gated; on a single-core host the
/// transport worker cannot actually run in parallel).
fn compare_node_aggregation() -> NodeAggRun {
    let fan_out = |rpn: usize| {
        let config = CommConfig {
            ranks_per_node: rpn,
            overlap_flush: Some(false),
            ..Default::default()
        };
        World::new(8).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<(u64, Vec<(u64, u64, u64)>), _>(|_c, _msg| {});
            if comm.rank() == 0 {
                for q in 0..NA_VERTS as u64 {
                    let cands: Vec<(u64, u64, u64)> = (0..NA_CANDS as u64)
                        .map(|i| (hash64(q * 131 + i), 4096 + i * 3, i % 7))
                        .collect();
                    comm.send_to_many(4..4 + NA_FANOUT, &h, &(q, cands));
                }
            }
            comm.barrier();
        })
    };
    let flat = fan_out(1);
    let agg = fan_out(4);
    let delivered = (NA_VERTS * NA_FANOUT) as u64;
    assert_eq!(flat.total_stats().handlers_run, delivered);
    assert_eq!(agg.total_stats().handlers_run, delivered);
    let per_cand = |bytes: u64| bytes as f64 / (delivered as usize * NA_CANDS) as f64;
    let (f0, a0) = (flat.stats[0], agg.stats[0]);
    let run = NodeAggRun {
        flat_bytes_remote: f0.bytes_remote,
        agg_bytes_remote: a0.bytes_remote,
        flat_bytes_per_candidate: per_cand(f0.bytes_remote),
        agg_bytes_per_candidate: per_cand(a0.bytes_remote),
        records_multicast: a0.records_multicast,
        multicast_bytes_saved: a0.multicast_bytes_saved,
        inline_ns_per_send: flush_handoff_ns(false),
        overlap_ns_per_send: flush_handoff_ns(true),
    };
    println!(
        "node_aggregation/pull_fanout_rpn1         {:>12.3} B/cand  {:>10} bytes",
        run.flat_bytes_per_candidate, run.flat_bytes_remote
    );
    println!(
        "node_aggregation/pull_fanout_rpn4         {:>12.3} B/cand  {:>10} bytes  {:>8} multicast records  {:>10} bytes saved",
        run.agg_bytes_per_candidate,
        run.agg_bytes_remote,
        run.records_multicast,
        run.multicast_bytes_saved
    );
    if run.agg_bytes_remote >= run.flat_bytes_remote {
        println!(
            "WARNING: multicast fan-out did not shrink the wire ({} vs {})",
            run.agg_bytes_remote, run.flat_bytes_remote
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "node_aggregation/flush_inline             {:>12.1} ns/send",
        run.inline_ns_per_send
    );
    println!(
        "node_aggregation/flush_overlapped         {:>12.1} ns/send  ({:+.1}%)",
        run.overlap_ns_per_send,
        100.0 * (run.overlap_ns_per_send / run.inline_ns_per_send - 1.0)
    );
    if run.overlap_ns_per_send >= run.inline_ns_per_send && cores < 4 {
        println!(
            "WARNING: overlapped flush did not beat inline on this {cores}-core host — \
             the transport worker needs a spare core to pipeline; treat as context, not signal"
        );
    }
    run
}

/// Times the encode-side cost of one `send` (including its share of
/// flush handoffs) with the transport stage on or off.
fn flush_handoff_ns(overlap: bool) -> f64 {
    let config = CommConfig {
        flush_threshold: Some(4096),
        ranks_per_node: 1,
        overlap_flush: Some(overlap),
    };
    let out = World::new(2).with_config(config).run(|comm| {
        let h = comm.register::<Vec<u64>, _>(|_c, _v| {});
        if comm.rank() == 0 {
            let payload = vec![u64::MAX; 64]; // ~644 B/record: flush every ~7 sends
            for _ in 0..NA_SENDS / 8 {
                comm.send(1, &h, &payload); // warm-up: prime buffers + pool
            }
            let start = Instant::now();
            for _ in 0..NA_SENDS {
                comm.send(1, &h, &payload);
            }
            let ns = start.elapsed().as_nanos() as f64 / NA_SENDS as f64;
            comm.barrier();
            ns
        } else {
            comm.barrier();
            0.0
        }
    });
    out[0]
}

/// Synthetic dry-run input: `verts` local vertices, each with `deg`
/// wedge targets spread over a hashed id space.
fn dry_run_adjacency(verts: usize, deg: usize) -> Vec<Vec<u64>> {
    (0..verts as u64)
        .map(|s| {
            (0..deg as u64)
                .map(|i| hash64(s * 131 + i) % (verts as u64 * 2))
                .collect()
        })
        .collect()
}

/// The retired dry-run bookkeeping: per-target hash maps for planned
/// counts and resume pointers (one heap vector per distinct target).
fn plan_hashed(adj: &[Vec<u64>]) -> (u64, usize) {
    let mut planned: FastMap<u64, u64> = FastMap::default();
    let mut resume: FastMap<u64, Vec<(u32, u32)>> = FastMap::default();
    for (slot, targets) in adj.iter().enumerate() {
        for (i, &q) in targets.iter().enumerate() {
            let suffix = targets.len() - i - 1;
            if suffix == 0 {
                break;
            }
            *planned.entry(q).or_insert(0) += suffix as u64;
            resume.entry(q).or_default().push((slot as u32, i as u32));
        }
    }
    (planned.values().sum(), resume.len())
}

/// The current dry-run bookkeeping: one sorted `(q, slot, idx)` vector;
/// planned counts derived from the contiguous runs.
fn plan_sorted(adj: &[Vec<u64>]) -> (u64, usize) {
    let mut entries: Vec<(u64, u32, u32)> = Vec::new();
    for (slot, targets) in adj.iter().enumerate() {
        for (i, &q) in targets.iter().enumerate() {
            if targets.len() - i - 1 == 0 {
                break;
            }
            entries.push((q, slot as u32, i as u32));
        }
    }
    entries.sort_unstable();
    let mut total = 0u64;
    let mut runs = 0usize;
    for run in entries.chunk_by(|a, b| a.0 == b.0) {
        runs += 1;
        total += run
            .iter()
            .map(|&(_, slot, i)| (adj[slot as usize].len() - i as usize - 1) as u64)
            .sum::<u64>();
    }
    (total, runs)
}

const DRY_RUN_VERTS: usize = 2048;
const DRY_RUN_DEG: usize = 16;

/// Old-vs-new comparison of the Push-Pull dry-run planning structures
/// (ROADMAP "dry-run maps" item; allocation counts are the gate-worthy
/// signal, wall time is context).
fn compare_dry_run_plans() -> (PathRun, PathRun) {
    let adj = dry_run_adjacency(DRY_RUN_VERTS, DRY_RUN_DEG);
    assert_eq!(
        plan_hashed(&adj),
        plan_sorted(&adj),
        "planning structures disagree"
    );
    type PlanFn = dyn Fn(&[Vec<u64>]) -> (u64, usize);
    let measure = |f: &PlanFn| {
        let _warm = black_box(f(&adj));
        let before_allocs = allocs_now();
        let start = Instant::now();
        let out = black_box(f(&adj));
        let ns = start.elapsed().as_nanos() as f64;
        PathRun {
            allocs: allocs_now() - before_allocs,
            ns,
            bytes: out.1, // distinct targets, for the report
        }
    };
    let old = measure(&plan_hashed);
    let new = measure(&plan_sorted);
    println!(
        "dry_run_plan/hashed_maps                  {:>12.1} ns  {:>8} allocs  {:>9} targets",
        old.ns, old.allocs, old.bytes
    );
    println!(
        "dry_run_plan/sorted_vec                   {:>12.1} ns  {:>8} allocs  {:>9} targets",
        new.ns, new.allocs, new.bytes
    );
    (old, new)
}

/// "Load once, serve many": cold ingest vs snapshot restart of the
/// resident service, plus the resident per-query dispatch cost against
/// the from-scratch build-and-survey path (same graph as the survey
/// section). `snapshot_bytes` is the deterministic, gate-worthy
/// signal; the timings are wall-clock context.
struct SnapshotRestartRun {
    cold_ingest_ns: f64,
    snapshot_load_ns: f64,
    snapshot_bytes: usize,
    resident_query_ns: f64,
    fresh_query_ns: f64,
}

fn compare_snapshot_restart() -> SnapshotRestartRun {
    let edges = tripoll_gen::rmat_edges(&tripoll_gen::RmatConfig::graph500(10, 42));
    let list = EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();

    let start = Instant::now();
    let resident: ResidentGraph<(), ()> = ResidentGraph::build(&list, |_| (), Partition::Hashed);
    let cold_ingest_ns = start.elapsed().as_nanos() as f64;

    let bytes = resident.snapshot_bytes(4);
    let start = Instant::now();
    let restored =
        ResidentGraph::<(), ()>::from_snapshot_bytes(&bytes).expect("own snapshot loads");
    let snapshot_load_ns = start.elapsed().as_nanos() as f64;

    // Warm the per-world-size shard cache and the dry-run plan, then
    // time the steady-state resident query.
    let q = ResidentQuery::new(4);
    let warm = restored.triangle_count(&q);
    let start = Instant::now();
    let resident_count = restored.triangle_count(&q);
    let resident_query_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(warm, resident_count, "resident query must be stable");

    // The from-scratch path pays graph build + dry-run every query.
    let start = Instant::now();
    let out = World::new(4).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g: DistGraph<(), ()> = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        tripoll_core::surveys::count::triangle_count(comm, &g, EngineMode::PushPull).0
    });
    let fresh_query_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(out[0], resident_count, "resident and fresh counts agree");

    let run = SnapshotRestartRun {
        cold_ingest_ns,
        snapshot_load_ns,
        snapshot_bytes: bytes.len(),
        resident_query_ns,
        fresh_query_ns,
    };
    println!(
        "snapshot_restart/cold_ingest              {:>12.1} ns",
        run.cold_ingest_ns
    );
    println!(
        "snapshot_restart/snapshot_load            {:>12.1} ns  {:>8} bytes",
        run.snapshot_load_ns, run.snapshot_bytes
    );
    println!(
        "snapshot_restart/resident_query           {:>12.1} ns  (fresh path {:>12.1} ns)",
        run.resident_query_ns, run.fresh_query_ns
    );
    run
}

/// One batch-size point of the incremental-ingest comparison.
struct IncrementalPoint {
    batch_pct: usize,
    batch_edges: usize,
    delta_triangles: u64,
    delta_bytes: u64,
    delta_candidates: u64,
    delta_survey_ns: f64,
    full_recount_ns: f64,
}

/// Streaming appends: after `ingest_batch` lands a 1% / 10% batch on
/// the fixed survey graph, how does surveying only the delta wedges
/// compare against recounting the whole graph? The delta survey's wire
/// bytes per kernel candidate (at the 1% point, where the delta
/// machinery's overheads would show first) is the deterministic,
/// gate-worthy signal; the delta-vs-recount timings are wall-clock
/// context.
struct IncrementalIngestRun {
    delta_bytes_per_candidate: f64,
    points: Vec<IncrementalPoint>,
}

fn compare_incremental_ingest() -> IncrementalIngestRun {
    let edges = tripoll_gen::rmat_edges(&tripoll_gen::RmatConfig::graph500(10, 42));
    let list = EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    let all = list.as_slice();

    let mut points = Vec::new();
    for pct in [1usize, 10] {
        let cut = all.len() - all.len() * pct / 100;
        let resident: ResidentGraph<(), ()> = ResidentGraph::build(
            &EdgeList::from_vec(all[..cut].to_vec()),
            |_| (),
            Partition::Hashed,
        );
        let q = ResidentQuery::new(4);
        let before = resident.triangle_count(&q);
        // The batch tail may introduce vertices absent from the base
        // prefix, so admit them with the same (unit) metadata function.
        let delta = resident
            .ingest_batch_with(&all[cut..], |_| ())
            .expect("append of canonical edges succeeds");
        // Warm the post-ingest shard cache so both timings below
        // measure the survey, not the per-world-size rebuild.
        let after = resident.triangle_count(&q);

        let count = Arc::new(AtomicU64::new(0));
        let c2 = count.clone();
        let start = Instant::now();
        let outcomes = resident
            .survey_delta(&delta, &q, move |_c, _tm| {
                c2.fetch_add(1, Ordering::Relaxed);
            })
            .expect("freshest delta is never stale");
        let delta_survey_ns = start.elapsed().as_nanos() as f64;
        let delta_triangles = count.load(Ordering::Relaxed);
        assert_eq!(
            before + delta_triangles,
            after,
            "delta must complete the recount exactly"
        );
        let delta_bytes: u64 = outcomes
            .iter()
            .flat_map(|o| o.report.phases.iter())
            .map(|p| p.stats.bytes_remote + p.stats.bytes_local)
            .sum();
        let delta_candidates: u64 = outcomes.iter().map(|o| o.kernel.candidates).sum();

        let start = Instant::now();
        let full = resident.triangle_count(&q);
        let full_recount_ns = start.elapsed().as_nanos() as f64;
        assert_eq!(full, after, "warmed recount is stable");

        let p = IncrementalPoint {
            batch_pct: pct,
            batch_edges: all.len() - cut,
            delta_triangles,
            delta_bytes,
            delta_candidates,
            delta_survey_ns,
            full_recount_ns,
        };
        println!(
            "incremental_ingest/batch{:02}pct            {:>12.1} ns  (full recount {:>12.1} ns, {:>7} delta triangles)",
            p.batch_pct, p.delta_survey_ns, p.full_recount_ns, p.delta_triangles
        );
        points.push(p);
    }
    let p1 = &points[0];
    IncrementalIngestRun {
        delta_bytes_per_candidate: p1.delta_bytes as f64 / p1.delta_candidates.max(1) as f64,
        points,
    }
}

/// Instrumented end-to-end survey: exact communication counters plus
/// wall time for both engines on a deterministic R-MAT graph.
struct SurveyRun {
    mode: &'static str,
    nranks: usize,
    triangles: u64,
    wall_seconds: f64,
    stats: tripoll_ygm::stats::CommStats,
}

fn run_survey(mode: EngineMode, nranks: usize) -> SurveyRun {
    let edges = tripoll_gen::rmat_edges(&tripoll_gen::RmatConfig::graph500(10, 42));
    let list = EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    let start = Instant::now();
    let out = World::new(nranks).run_with_stats(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g: DistGraph<bool, ()> = build_dist_graph(comm, local, |_| false, Partition::Hashed);
        tripoll_core::surveys::count::triangle_count(comm, &g, mode).0
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let triangles = out.results[0];
    assert!(out.results.iter().all(|&c| c == triangles));
    SurveyRun {
        mode: match mode {
            EngineMode::PushOnly => "push_only",
            EngineMode::PushPull => "push_pull",
        },
        nranks,
        triangles,
        wall_seconds,
        stats: out.total_stats(),
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    kernels: &[criterion::BenchResult],
    old: &PathRun,
    new: &PathRun,
    recv_old: &PathRun,
    recv_new: &PathRun,
    layout_int: &LayoutRun,
    layout_col: &LayoutRun,
    dry_old: &PathRun,
    dry_new: &PathRun,
    kernel_skews: &[SkewRun],
    kernel_cpc: f64,
    simd_cpc: f64,
    crack: &CrackRun,
    pd: &ParallelDispatch,
    na: &NodeAggRun,
    snap: &SnapshotRestartRun,
    inc: &IncrementalIngestRun,
    surveys: &[SurveyRun],
) {
    let mut j = String::from("{\n");
    j.push_str("  \"schema\": \"tripoll-bench-micro/v9\",\n");

    j.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.2}, \"iterations\": {}}}{}\n",
            json_escape_free(&k.id),
            k.ns_per_iter,
            k.iterations,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");

    let alloc_reduction = if old.allocs > 0 {
        100.0 * (1.0 - new.allocs as f64 / old.allocs as f64)
    } else {
        0.0
    };
    j.push_str(&format!(
        "  \"push_path\": {{\n    \"batches\": {PUSH_BATCHES},\n    \"candidates_per_batch\": {PUSH_CANDIDATES},\n    \"materialized\": {{\"allocs\": {}, \"ns_per_batch\": {:.1}, \"bytes\": {}}},\n    \"encode_once\": {{\"allocs\": {}, \"ns_per_batch\": {:.1}, \"bytes\": {}}},\n    \"alloc_reduction_pct\": {:.1}\n  }},\n",
        old.allocs,
        old.ns / PUSH_BATCHES as f64,
        old.bytes,
        new.allocs,
        new.ns / PUSH_BATCHES as f64,
        new.bytes,
        alloc_reduction
    ));

    let recv_reduction = if recv_old.allocs > 0 {
        100.0 * (1.0 - recv_new.allocs as f64 / recv_old.allocs as f64)
    } else {
        0.0
    };
    j.push_str(&format!(
        "  \"recv_path\": {{\n    \"batches\": {PUSH_BATCHES},\n    \"candidates_per_batch\": {PUSH_CANDIDATES},\n    \"materialized\": {{\"allocs\": {}, \"allocs_per_batch\": {:.4}, \"ns_per_batch\": {:.1}, \"bytes\": {}}},\n    \"cursor\": {{\"allocs\": {}, \"allocs_per_batch\": {:.4}, \"ns_per_batch\": {:.1}, \"bytes\": {}}},\n    \"alloc_reduction_pct\": {:.1}\n  }},\n",
        recv_old.allocs,
        recv_old.allocs as f64 / PUSH_BATCHES as f64,
        recv_old.ns / PUSH_BATCHES as f64,
        recv_old.bytes,
        recv_new.allocs,
        recv_new.allocs as f64 / PUSH_BATCHES as f64,
        recv_new.ns / PUSH_BATCHES as f64,
        recv_new.bytes,
        recv_reduction
    ));

    let per_cand = |bytes: usize| bytes as f64 / (PUSH_BATCHES * PUSH_CANDIDATES) as f64;
    let layout_obj = |r: &LayoutRun| {
        // The columnar object carries the pre-kernel scalar-walk decode
        // as the before/after record of the blocked-decode fix.
        let scalar_walk = r.decode_scalar.as_ref().map_or(String::new(), |s| {
            format!(
                ", \"decode_scalar_walk_ns_per_batch\": {:.1}, \"decode_scalar_walk_allocs\": {}",
                s.ns / PUSH_BATCHES as f64,
                s.allocs
            )
        });
        format!(
            "{{\"bytes\": {}, \"bytes_per_candidate\": {:.3}, \"encode_allocs\": {}, \"encode_ns_per_batch\": {:.1}, \"decode_allocs\": {}, \"decode_allocs_per_batch\": {:.4}, \"decode_ns_per_batch\": {:.1}{}}}",
            r.bytes,
            per_cand(r.bytes),
            r.encode.allocs,
            r.encode.ns / PUSH_BATCHES as f64,
            r.decode.allocs,
            r.decode.allocs as f64 / PUSH_BATCHES as f64,
            r.decode.ns / PUSH_BATCHES as f64,
            scalar_walk,
        )
    };
    j.push_str(&format!(
        "  \"batch_layout\": {{\n    \"batches\": {PUSH_BATCHES},\n    \"candidates_per_batch\": {PUSH_CANDIDATES},\n    \"interleaved\": {},\n    \"columnar\": {},\n    \"bytes_reduction_pct\": {:.1}\n  }},\n",
        layout_obj(layout_int),
        layout_obj(layout_col),
        100.0 * (1.0 - layout_col.bytes as f64 / layout_int.bytes as f64),
    ));

    let dry_reduction = if dry_old.allocs > 0 {
        100.0 * (1.0 - dry_new.allocs as f64 / dry_old.allocs as f64)
    } else {
        0.0
    };
    j.push_str(&format!(
        "  \"dry_run_plan\": {{\n    \"vertices\": {DRY_RUN_VERTS},\n    \"targets_per_vertex\": {DRY_RUN_DEG},\n    \"hashed_maps\": {{\"allocs\": {}, \"ns\": {:.1}}},\n    \"sorted_vec\": {{\"allocs\": {}, \"ns\": {:.1}}},\n    \"alloc_reduction_pct\": {:.1}\n  }},\n",
        dry_old.allocs, dry_old.ns, dry_new.allocs, dry_new.ns, dry_reduction
    ));

    // The gated summaries (Auto and Simd compares/candidate over all
    // skews) lead the section so the minimal scraper in bench_diff
    // reads them first. Key order matters to that scraper: the bare
    // `compares_per_candidate` must come before any key containing it
    // as a suffix would — the per-skew entries use the distinct
    // `kernel_compares_per_candidate` key for the same reason.
    j.push_str(&format!(
        "  \"intersect_kernel\": {{\n    \"compares_per_candidate\": {kernel_cpc:.4},\n    \"simd_compares_per_candidate\": {simd_cpc:.4},\n    \"block_len\": {KEY_BLOCK_LEN},\n    \"iters\": {KERNEL_ITERS},\n    \"skews\": [\n"
    ));
    for (i, s) in kernel_skews.iter().enumerate() {
        let kernel_obj = |r: &KernelRun| {
            format!(
                "\"{}\": {{\"ns_per_candidate\": {:.3}, \"kernel_compares_per_candidate\": {:.4}, \"allocs\": {}, \"matches_per_iter\": {}}}",
                r.name, r.ns_per_candidate, r.compares_per_candidate, r.allocs, r.matches_per_iter
            )
        };
        let runs: Vec<String> = s.runs.iter().map(kernel_obj).collect();
        j.push_str(&format!(
            "      {{\"skew\": \"{}\", \"left\": {}, \"right\": {}, {}}}{}\n",
            s.name,
            s.left,
            s.right,
            runs.join(", "),
            if i + 1 < kernel_skews.len() { "," } else { "" }
        ));
    }
    j.push_str("    ]\n  },\n");

    j.push_str(&format!(
        "  \"varint_crack\": {{\n    \"keys\": {CRACK_KEYS},\n    \"scalar_ns_per_key\": {:.3},\n    \"crack_ns_per_key\": {:.3},\n    \"reduction_pct\": {:.1}\n  }},\n",
        crack.scalar_ns_per_key,
        crack.crack_ns_per_key,
        100.0 * (1.0 - crack.crack_ns_per_key / crack.scalar_ns_per_key),
    ));

    // The gated summary (`parallel_compares_per_candidate`, CI tolerance
    // 0%) leads the section; ns/batch and speedups are wall-clock
    // context, honest about the host's core count.
    let pd_t1 = pd.threads[0].1;
    let pd_threads: Vec<String> = pd
        .threads
        .iter()
        .map(|&(t, ns)| {
            format!(
                "{{\"threads\": {t}, \"ns_per_batch\": {ns:.1}, \"speedup\": {:.2}}}",
                pd_t1 / ns
            )
        })
        .collect();
    j.push_str(&format!(
        "  \"parallel_dispatch\": {{\n    \"parallel_compares_per_candidate\": {:.4},\n    \"serial_compares_per_candidate\": {:.4},\n    \"batches\": {PD_BATCHES},\n    \"candidates_per_batch\": {PD_CANDS},\n    \"right_len\": {PD_RIGHT},\n    \"host_cores\": {},\n    \"scaling\": [\n      {}\n    ]\n  }},\n",
        pd.par_compares_per_candidate,
        pd.serial_compares_per_candidate,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        pd_threads.join(",\n      "),
    ));

    // The gated metric (`multicast_bytes_per_candidate`, the rpn = 4
    // pull fan-out's wire bytes per delivered candidate) leads the
    // section for the minimal scraper; the flush-handoff timings are
    // wall-clock context and deliberately not gated.
    j.push_str(&format!(
        "  \"node_aggregation\": {{\n    \"multicast_bytes_per_candidate\": {:.3},\n    \"flat_bytes_per_candidate\": {:.3},\n    \"verts\": {NA_VERTS},\n    \"fanout\": {NA_FANOUT},\n    \"candidates_per_vertex\": {NA_CANDS},\n    \"flat_bytes_remote\": {},\n    \"aggregated_bytes_remote\": {},\n    \"records_multicast\": {},\n    \"multicast_bytes_saved\": {},\n    \"bytes_reduction_pct\": {:.1},\n    \"flush_inline_ns_per_send\": {:.1},\n    \"flush_overlap_ns_per_send\": {:.1},\n    \"host_cores\": {}\n  }},\n",
        na.agg_bytes_per_candidate,
        na.flat_bytes_per_candidate,
        na.flat_bytes_remote,
        na.agg_bytes_remote,
        na.records_multicast,
        na.multicast_bytes_saved,
        100.0 * (1.0 - na.agg_bytes_remote as f64 / na.flat_bytes_remote as f64),
        na.inline_ns_per_send,
        na.overlap_ns_per_send,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    ));

    // The gated metric (`snapshot_bytes`, deterministic for a fixed
    // graph + format version) leads the section for the minimal
    // scraper; ingest/load/query timings are wall-clock context and
    // deliberately not gated.
    j.push_str(&format!(
        "  \"snapshot_restart\": {{\n    \"snapshot_bytes\": {},\n    \"cold_ingest_ns\": {:.1},\n    \"snapshot_load_ns\": {:.1},\n    \"restart_speedup\": {:.2},\n    \"resident_query_ns\": {:.1},\n    \"fresh_query_ns\": {:.1},\n    \"query_speedup\": {:.2}\n  }},\n",
        snap.snapshot_bytes,
        snap.cold_ingest_ns,
        snap.snapshot_load_ns,
        snap.cold_ingest_ns / snap.snapshot_load_ns,
        snap.resident_query_ns,
        snap.fresh_query_ns,
        snap.fresh_query_ns / snap.resident_query_ns,
    ));

    // The gated metric (`delta_bytes_per_candidate`, the 1% batch's
    // delta-survey wire bytes per kernel candidate — deterministic
    // record content for the fixed graph and batch) leads the section
    // for the minimal scraper; the delta-vs-recount timings are
    // wall-clock context and deliberately not gated.
    let inc_points: Vec<String> = inc
        .points
        .iter()
        .map(|p| {
            format!(
                "{{\"batch_pct\": {}, \"batch_edges\": {}, \"delta_triangles\": {}, \"delta_bytes\": {}, \"delta_candidates\": {}, \"delta_survey_ns\": {:.1}, \"full_recount_ns\": {:.1}, \"delta_speedup\": {:.2}}}",
                p.batch_pct,
                p.batch_edges,
                p.delta_triangles,
                p.delta_bytes,
                p.delta_candidates,
                p.delta_survey_ns,
                p.full_recount_ns,
                p.full_recount_ns / p.delta_survey_ns,
            )
        })
        .collect();
    j.push_str(&format!(
        "  \"incremental_ingest\": {{\n    \"delta_bytes_per_candidate\": {:.3},\n    \"points\": [\n      {}\n    ]\n  }},\n",
        inc.delta_bytes_per_candidate,
        inc_points.join(",\n      "),
    ));

    j.push_str("  \"surveys\": [\n");
    for (i, s) in surveys.iter().enumerate() {
        let st = &s.stats;
        let encode_savings = if st.bytes_remote + st.bytes_local > 0 {
            100.0 * (1.0 - st.bytes_encoded as f64 / (st.bytes_remote + st.bytes_local) as f64)
        } else {
            0.0
        };
        j.push_str(&format!(
            "    {{\"mode\": \"{}\", \"nranks\": {}, \"triangles\": {}, \"wall_seconds\": {:.4}, \"bytes_total\": {}, \"bytes_encoded\": {}, \"encode_savings_pct\": {:.1}, \"envelopes_total\": {}, \"records_total\": {}, \"records_encoded\": {}, \"pool_reuses\": {}, \"records_borrowed\": {}, \"bytes_decoded_in_place\": {}}}{}\n",
            s.mode,
            s.nranks,
            s.triangles,
            s.wall_seconds,
            st.bytes_remote + st.bytes_local,
            st.bytes_encoded,
            encode_savings,
            st.envelopes_remote + st.envelopes_local,
            st.records_remote + st.records_local,
            st.records_encoded,
            st.pool_reuses,
            st.records_borrowed,
            st.bytes_decoded_in_place,
            if i + 1 < surveys.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");

    // Default to the workspace root (benches run with the package dir as
    // CWD) so the trajectory file lands in one predictable place.
    let path = std::env::var("TRIPOLL_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &j).expect("write BENCH_micro.json");
    println!("\nwrote {path}");
}

criterion_group!(
    benches,
    bench_varint,
    bench_codec,
    bench_buffer,
    bench_merge_path,
    bench_hash
);

fn main() {
    let mut c = Criterion::new();
    benches(&mut c);

    println!();
    let (old, new) = compare_push_paths();
    let (recv_old, recv_new) = compare_recv_paths();
    let (layout_int, layout_col) = compare_batch_layouts();
    let (dry_old, dry_new) = compare_dry_run_plans();
    let (kernel_skews, kernel_cpc, simd_cpc) = compare_intersect_kernels();
    let crack = compare_varint_crack();
    let pd = compare_parallel_dispatch();
    let na = compare_node_aggregation();
    let snap = compare_snapshot_restart();
    let inc = compare_incremental_ingest();

    let mut surveys = Vec::new();
    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        for nranks in [1, 4] {
            let s = run_survey(mode, nranks);
            println!(
                "survey/{}/ranks{}                    {:>9} triangles  {:>10} bytes  {:>6} envelopes  {:.3}s",
                s.mode,
                s.nranks,
                s.triangles,
                s.stats.bytes_remote + s.stats.bytes_local,
                s.stats.envelopes_remote + s.stats.envelopes_local,
                s.wall_seconds
            );
            surveys.push(s);
        }
    }
    // Counts must agree across engines and rank counts.
    let t0 = surveys[0].triangles;
    assert!(surveys.iter().all(|s| s.triangles == t0), "count mismatch");

    write_json(
        c.results(),
        &old,
        &new,
        &recv_old,
        &recv_new,
        &layout_int,
        &layout_col,
        &dry_old,
        &dry_new,
        &kernel_skews,
        kernel_cpc,
        simd_cpc,
        &crack,
        &pd,
        &na,
        &snap,
        &inc,
        &surveys,
    );
}
