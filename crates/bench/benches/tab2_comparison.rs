//! **Table 2** — end-to-end runtime: TriPoll vs the tailored counters.
//!
//! The paper compares TriPoll against Pearce et al. [42], Tom et al.
//! [58] and TriC [20] on LiveJournal, Friendster, Twitter and Web Data
//! Commons, all on the same allocation (64 nodes / 1024 cores there; a
//! fixed perfect-square rank count here, since the 2D code requires
//! one). Timings are end-to-end: graph construction/preprocessing plus
//! counting.
//!
//! Expected shape (paper §5.6): TriPoll and the 2D code trade wins on
//! the social graphs (Tom et al. is throughput-optimized), Pearce et
//! al. is a factor ~2-7 behind TriPoll (per-wedge messages), and TriC
//! trails far behind.

use std::time::Instant;

use tripoll_analysis::Table;
use tripoll_baselines::{pearce_count, tom2d_count, tric_count};
use tripoll_bench::{fmt_secs, seed, size, world};
use tripoll_core::surveys::count::triangle_count;
use tripoll_core::EngineMode;
use tripoll_graph::{build_dist_graph, DistGraph, Partition};
use tripoll_ygm::{CommStats, CostModel};

/// Fixed rank count: perfect square, as Tom et al. requires.
fn nranks() -> usize {
    std::env::var("TRIPOLL_BENCH_TAB2_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

struct Outcome {
    count: u64,
    wall: f64,
    modeled: f64,
    bytes: u64,
}

fn modeled(per_rank: &[CommStats]) -> f64 {
    CostModel::catalyst_like().phase_time(per_rank)
}

fn main() {
    let n = nranks();
    println!(
        "Reproducing Table 2 (system comparison) on {n} ranks at {:?} scale\n",
        size()
    );

    let mut table = Table::new(
        format!("Table 2: end-to-end runtime on {n} ranks (modeled | wall | comm)"),
        &["Graph", "System", "|T|", "modeled", "wall", "remote bytes"],
    );

    for ds in tripoll_gen::table2_suite(size(), seed()) {
        let list = ds.edge_list();
        type SystemRunner<'a> = Box<dyn Fn() -> Outcome + 'a>;
        let systems: Vec<(&str, SystemRunner)> = vec![
            (
                "TriPoll (Push-Pull)",
                Box::new(|| {
                    let out = world(n).run_with_stats(|comm| {
                        let start = Instant::now();
                        let local = list.stride_for_rank(comm.rank(), comm.nranks());
                        let g: DistGraph<bool, ()> =
                            build_dist_graph(comm, local, |_| false, Partition::Hashed);
                        let (count, _) = triangle_count(comm, &g, EngineMode::PushPull);
                        (count, start.elapsed().as_secs_f64())
                    });
                    Outcome {
                        count: out.results[0].0,
                        wall: out.results.iter().map(|r| r.1).fold(0.0, f64::max),
                        modeled: modeled(&out.stats),
                        bytes: out.total_stats().bytes_remote,
                    }
                }),
            ),
            (
                "Pearce et al. [42]",
                Box::new(|| {
                    let out = world(n).run_with_stats(|comm| {
                        let local = list.stride_for_rank(comm.rank(), comm.nranks());
                        let edges = local.into_iter().map(|(u, v, ())| (u, v)).collect();
                        pearce_count(comm, edges, Partition::Hashed)
                    });
                    Outcome {
                        count: out.results[0].0,
                        wall: out.results.iter().map(|r| r.1.seconds).fold(0.0, f64::max),
                        modeled: modeled(&out.stats),
                        bytes: out.total_stats().bytes_remote,
                    }
                }),
            ),
            (
                "Tom et al. [58]",
                Box::new(|| {
                    let out = world(n).run_with_stats(|comm| {
                        let local = list.stride_for_rank(comm.rank(), comm.nranks());
                        let edges = local.into_iter().map(|(u, v, ())| (u, v)).collect();
                        tom2d_count(comm, edges)
                    });
                    Outcome {
                        count: out.results[0].0,
                        wall: out.results.iter().map(|r| r.1.seconds).fold(0.0, f64::max),
                        modeled: modeled(&out.stats),
                        bytes: out.total_stats().bytes_remote,
                    }
                }),
            ),
            (
                "TriC [20]",
                Box::new(|| {
                    let out = world(n).run_with_stats(|comm| {
                        let local = list.stride_for_rank(comm.rank(), comm.nranks());
                        let edges = local.into_iter().map(|(u, v, ())| (u, v)).collect();
                        tric_count(comm, edges)
                    });
                    Outcome {
                        count: out.results[0].0,
                        wall: out.results.iter().map(|r| r.1.seconds).fold(0.0, f64::max),
                        modeled: modeled(&out.stats),
                        bytes: out.total_stats().bytes_remote,
                    }
                }),
            ),
        ];

        let mut reference: Option<u64> = None;
        for (name, runner) in systems {
            let o = runner();
            match reference {
                None => reference = Some(o.count),
                Some(r) => assert_eq!(o.count, r, "{name} disagrees on {}", ds.name),
            }
            table.row(&[
                ds.name.to_string(),
                name.to_string(),
                o.count.to_string(),
                fmt_secs(o.modeled),
                fmt_secs(o.wall),
                tripoll_analysis::fmt_bytes(o.bytes),
            ]);
        }
    }
    println!("{}", table.render());
    println!("All systems run on the identical simulated runtime; counts cross-validate.");
}
