//! **Figure 5** — weak scaling on R-MAT graphs.
//!
//! The paper fixes one scale-24 R-MAT per compute node (scale 24 on 1
//! node up to scale 32 on 256) and plots the *work rate*
//! `|W+| / (N · t)` — wedge checks per node-second. Expected shape: the
//! rate decreases steadily with node count, because a growing graph
//! spread over constant-size partitions offers fewer chances to
//! aggregate candidate edges per target (paper §5.5).

use tripoll_analysis::Table;
use tripoll_bench::{fmt_secs, rank_series, run_count, seed};
use tripoll_core::EngineMode;
use tripoll_gen::rmat_weak_scaling;
use tripoll_graph::EdgeList;

/// Per-rank R-MAT scale (the paper's per-node "24", shrunk).
fn base_scale() -> u32 {
    std::env::var("TRIPOLL_BENCH_RMAT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

fn main() {
    let ranks = rank_series();
    let base = base_scale();
    println!("Reproducing Fig. 5 (weak scaling, R-MAT scale {base} per rank) on ranks {ranks:?}\n");

    let mut table = Table::new(
        "Fig. 5: weak scaling of Push-Pull triangle counting",
        &[
            "ranks",
            "scale",
            "|W+|",
            "|T|",
            "t(model)",
            "rate |W+|/(N*t) (model)",
            "t(wall)",
        ],
    );
    for &n in &ranks {
        let edges = rmat_weak_scaling(base, n, seed());
        let list =
            EdgeList::from_vec(edges.into_iter().map(|(u, v)| (u, v, ())).collect()).canonicalize();
        let run = run_count(&list, n, EngineMode::PushPull);
        let rate = run.wedges as f64 / (n as f64 * run.modeled_seconds.max(1e-12));
        table.row(&[
            n.to_string(),
            (base + (n as f64).log2().round() as u32).to_string(),
            run.wedges.to_string(),
            run.triangles.to_string(),
            fmt_secs(run.modeled_seconds),
            format!("{rate:.3e}"),
            fmt_secs(run.wall_seconds),
        ]);
    }
    println!("{}", table.render());
    println!("Expected: the work rate decays with rank count (fewer aggregation opportunities).");
}
