//! **Figure 9 / §5.9** — impact of metadata on weak-scaling throughput.
//!
//! The paper repeats the Fig. 5 weak-scaling experiment with each
//! vertex's degree as metadata and a callback counting
//! `(⌈log2 d(p)⌉, ⌈log2 d(q)⌉, ⌈log2 d(r)⌉)` triples, for both the
//! Push-Only and Push-Pull engines. Expected shape: each engine's
//! throughput (`|W+|/(N·t)`) is cut by a factor of *just under 2* by the
//! metadata + callback, while scalability is unaffected.

use std::sync::Arc;

use tripoll_analysis::Table;
use tripoll_bench::{rank_series, seed, world};
use tripoll_core::surveys::count::triangle_count;
use tripoll_core::surveys::degree_triples::degree_triple_survey;
use tripoll_core::{EngineMode, SurveyReport};
use tripoll_gen::rmat_weak_scaling;
use tripoll_graph::{build_dist_graph, DistGraph, EdgeList, Partition};
use tripoll_ygm::hash::FastMap;
use tripoll_ygm::{CommStats, CostModel};

fn base_scale() -> u32 {
    std::env::var("TRIPOLL_BENCH_RMAT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

/// Modeled seconds for a set of per-rank reports.
fn modeled(reports: &[SurveyReport]) -> f64 {
    let model = CostModel::catalyst_like();
    (0..reports[0].phases.len())
        .map(|i| {
            let per_rank: Vec<CommStats> = reports.iter().map(|r| r.phases[i].stats).collect();
            model.phase_time(&per_rank)
        })
        .sum()
}

fn main() {
    let ranks = rank_series();
    let base = base_scale();
    println!(
        "Reproducing Fig. 9 (metadata impact on weak scaling, R-MAT scale {base}/rank) on ranks {ranks:?}\n"
    );

    let mut table = Table::new(
        "Fig. 9: work rate |W+|/(N*t) with and without metadata (modeled)",
        &[
            "ranks",
            "engine",
            "rate dummy",
            "rate degree-meta",
            "slowdown",
        ],
    );

    for &n in &ranks {
        let raw = rmat_weak_scaling(base, n, seed());
        let list =
            EdgeList::from_vec(raw.into_iter().map(|(u, v)| (u, v, ())).collect()).canonicalize();
        // Degree table for the metadata runs (deterministic, shared).
        let mut deg: FastMap<u64, u64> = FastMap::default();
        for (u, v, ()) in list.as_slice() {
            *deg.entry(*u).or_insert(0) += 1;
            *deg.entry(*v).or_insert(0) += 1;
        }
        let deg = Arc::new(deg);

        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            // Dummy metadata run (plain counting).
            let dummy = {
                let list = &list;
                world(n).run(|comm| {
                    let local = list.stride_for_rank(comm.rank(), comm.nranks());
                    let g: DistGraph<bool, ()> =
                        build_dist_graph(comm, local, |_| false, Partition::Hashed);
                    let stats = g.global_stats(comm);
                    let (_count, report) = triangle_count(comm, &g, mode);
                    (report, stats.wedges)
                })
            };
            let wedges = dummy[0].1;
            let dummy_reports: Vec<SurveyReport> = dummy.into_iter().map(|(r, _)| r).collect();
            let t_dummy = modeled(&dummy_reports);

            // Degree-metadata run with the triple-counting callback.
            let meta = {
                let list = &list;
                let deg = Arc::clone(&deg);
                world(n).run(move |comm| {
                    let local = list.stride_for_rank(comm.rank(), comm.nranks());
                    let deg = Arc::clone(&deg);
                    let g: DistGraph<u64, ()> =
                        build_dist_graph(comm, local, move |v| deg[&v], Partition::Hashed);
                    let (_dist, report) = degree_triple_survey(comm, &g, mode);
                    report
                })
            };
            let t_meta = modeled(&meta);

            let rate = |t: f64| wedges as f64 / (n as f64 * t.max(1e-12));
            table.row(&[
                n.to_string(),
                mode.to_string(),
                format!("{:.3e}", rate(t_dummy)),
                format!("{:.3e}", rate(t_meta)),
                format!("{:.2}x (paper: ~2x)", t_meta / t_dummy.max(1e-12)),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Expected: metadata + callback cost a constant factor (just under 2x in the paper);");
    println!("scalability (the trend across ranks) is unaffected for both engines.");
}
