//! **Figure 6** — triangle closure times in the Reddit graph.
//!
//! The paper's flagship metadata survey (§5.7): for every triangle, sort
//! its three comment timestamps `t1 ≤ t2 ≤ t3` and histogram
//! `(⌈log2(t2−t1)⌉, ⌈log2(t3−t1)⌉)` — the joint distribution of wedge
//! opening vs triangle closing time. Expected shape: mass concentrated
//! at small opening buckets (wedges form fast, within a session) with a
//! long, broad tail in closing time (triangles are *not* systematically
//! closed quickly).

use tripoll_analysis::Table;
use tripoll_bench::{seed, size, world};
use tripoll_core::surveys::closure_times::closure_time_survey;
use tripoll_core::EngineMode;
use tripoll_gen::reddit_like;
use tripoll_graph::{build_dist_graph, DistGraph, Partition};

fn main() {
    let nranks = 4;
    println!(
        "Reproducing Fig. 6 (Reddit closure times) on {nranks} ranks at {:?} scale\n",
        size()
    );

    let edges = reddit_like(size(), seed());
    let out = world(nranks).run(|comm| {
        let local = edges.stride_for_rank(comm.rank(), comm.nranks());
        // Timestamps as edge metadata; no vertex metadata (§5.7).
        let g: DistGraph<(), u64> = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        let (hist, report) = closure_time_survey(comm, &g, EngineMode::PushPull, |&t| t);
        (hist, report.total_seconds)
    });
    let (hist, _) = &out[0];

    println!(
        "{}",
        hist.marginal_y()
            .render("Distribution of closing time (bucket = ceil(log2(seconds)))")
    );
    println!(
        "{}",
        hist.marginal_x().render("Distribution of opening time")
    );
    println!("{}", hist.render("opening time", "closing time"));

    // Quantified shape checks, printed for EXPERIMENTS.md.
    let mean_bucket = |h: &tripoll_analysis::Histogram| {
        let total = h.total().max(1) as f64;
        h.iter().map(|(b, c)| b as f64 * c as f64).sum::<f64>() / total
    };
    let open_mean = mean_bucket(&hist.marginal_x());
    let close_mean = mean_bucket(&hist.marginal_y());
    // Triangles whose closing edge arrives at least 4x (2 buckets) after
    // the wedge opened — the "not systematically closed rapidly" mass.
    let slow_closures: u64 = hist
        .iter()
        .filter(|&((open, close), _)| close >= open + 2)
        .map(|(_, c)| c)
        .sum();
    let fast_wedges: u64 = hist
        .iter()
        .filter(|&((open, _), _)| open <= 12) // wedge opened within ~1 hour
        .map(|(_, c)| c)
        .sum();
    let total = hist.total().max(1);
    let mut table = Table::new(
        "Fig. 6 summary",
        &[
            "triangles",
            "mean open bucket",
            "mean close bucket",
            "wedges open <= 1h",
            "close >= 4x open",
        ],
    );
    table.row(&[
        hist.total().to_string(),
        format!("2^{open_mean:.1} s"),
        format!("2^{close_mean:.1} s"),
        format!("{:.1}%", 100.0 * fast_wedges as f64 / total as f64),
        format!("{:.1}%", 100.0 * slow_closures as f64 / total as f64),
    ]);
    println!("{}", table.render());
    println!(
        "Expected: wedges often open fast, while closures lag well behind\n\
         (mean close bucket > mean open bucket; a large slow-closure share)."
    );
    assert!(close_mean > open_mean, "closure-time shape violated");
    assert!(
        slow_closures * 5 >= total,
        "expected >=20% slow closures, got {slow_closures}/{total}"
    );
}
