//! **Figure 4** — strong scaling of the Push-Pull phases.
//!
//! The paper runs Push-Pull triangle counting on Friendster, Twitter,
//! uk-2007-05 and web-cc12-hostgraph from 2 to 256 compute nodes and
//! plots the per-phase time breakdown plus the overall speedup relative
//! to the smallest configuration. Expected shape (paper §5.4):
//!
//! * good scaling to mid rank counts; efficiency tails off as fewer
//!   edges per rank leave fewer aggregation opportunities;
//! * the *pull* phase shrinks (relatively) with more ranks while *push*
//!   grows — the algorithm degrades towards Push-Only at scale.

use tripoll_analysis::Table;
use tripoll_bench::{fmt_secs, rank_series, run_count, seed, size};
use tripoll_core::EngineMode;
use tripoll_gen::table4_suite;

fn main() {
    let ranks = rank_series();
    println!(
        "Reproducing Fig. 4 (Push-Pull strong scaling) on ranks {ranks:?} at {:?} scale\n",
        size()
    );

    for ds in table4_suite(size(), seed()) {
        let list = ds.edge_list();
        let mut table = Table::new(
            format!("Fig. 4: {} (|T| anchor, per-phase modeled time)", ds.name),
            &[
                "ranks",
                "dry-run",
                "push",
                "pull",
                "total(model)",
                "total(wall)",
                "speedup(model)",
                "|T|",
            ],
        );
        let mut base_model: Option<f64> = None;
        for &n in &ranks {
            let run = run_count(&list, n, EngineMode::PushPull);
            let phase = |name: &str| {
                run.phases
                    .iter()
                    .find(|(p, _, _)| p == name)
                    .map(|&(_, _, modeled)| modeled)
                    .unwrap_or(0.0)
            };
            let base = *base_model.get_or_insert(run.modeled_seconds);
            table.row(&[
                n.to_string(),
                fmt_secs(phase("dry-run")),
                fmt_secs(phase("push")),
                fmt_secs(phase("pull")),
                fmt_secs(run.modeled_seconds),
                fmt_secs(run.wall_seconds),
                format!("{:.2}x", base / run.modeled_seconds.max(1e-12)),
                run.triangles.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    println!("Modeled time: α-β-γ cost model on exact per-rank traffic (see tripoll_ygm::cost).");
}
