//! **Table 1** — dataset overview: `|V|`, `|E|`, `|T|`, `d_max`, `d_max+`.
//!
//! Prints the statistics of every stand-in next to the published numbers
//! of the real dataset it models. Absolute sizes differ by construction
//! (the stand-ins are scaled down ~3-5 orders of magnitude); what should
//! match is the *character* of each graph — which ones are hub-extreme
//! (Twitter, the web graphs), which are mild (Friendster), and which are
//! triangle-dense relative to their edge count (the web corpora).

use tripoll_analysis::Table;
use tripoll_bench::{run_count, seed, size};
use tripoll_core::EngineMode;
use tripoll_gen::{datasets::reddit_paper_stats, reddit_like, table2_suite, table4_suite};
use tripoll_graph::EdgeList;

fn main() {
    let size = size();
    let seed = seed();
    println!("Reproducing Table 1 (dataset overview) at {size:?} scale, seed {seed}\n");

    let mut table = Table::new(
        "Table 1: datasets (stand-in measured | paper published)",
        &[
            "Graph",
            "|V|",
            "|E|",
            "|T|",
            "dmax",
            "dmax+",
            "paper |V|",
            "paper |E|",
            "paper |T|",
            "paper dmax",
            "paper dmax+",
        ],
    );

    let mut suite = table2_suite(size, seed);
    // Friendster/Twitter appear in both suites; add only the web graphs
    // unique to the Table 4 suite.
    suite.extend(
        table4_suite(size, seed)
            .into_iter()
            .filter(|d| d.name == "uk-2007-05" || d.name == "web-cc12-hostgraph"),
    );

    for ds in &suite {
        let list = ds.edge_list();
        let run = run_count(&list, 2, EngineMode::PushPull);
        table.row(&[
            ds.name.to_string(),
            run.graph.vertices.to_string(),
            run.graph.directed_edges.to_string(),
            run.triangles.to_string(),
            run.graph.max_degree.to_string(),
            run.graph.max_out_degree.to_string(),
            ds.paper.vertices.to_string(),
            ds.paper.edges.to_string(),
            ds.paper.triangles.to_string(),
            ds.paper.dmax.to_string(),
            ds.paper.dmax_plus.to_string(),
        ]);
    }

    // Reddit (temporal metadata; counted topology-only here).
    let reddit = reddit_like(size, seed);
    let topo = EdgeList::from_vec(
        reddit
            .as_slice()
            .iter()
            .map(|&(u, v, _)| (u, v, ()))
            .collect(),
    )
    .canonicalize();
    let run = run_count(&topo, 2, EngineMode::PushPull);
    let paper = reddit_paper_stats();
    table.row(&[
        "Reddit".to_string(),
        run.graph.vertices.to_string(),
        run.graph.directed_edges.to_string(),
        run.triangles.to_string(),
        run.graph.max_degree.to_string(),
        run.graph.max_out_degree.to_string(),
        paper.vertices.to_string(),
        paper.edges.to_string(),
        paper.triangles.to_string(),
        paper.dmax.to_string(),
        paper.dmax_plus.to_string(),
    ]);

    println!("{}", table.render());
    println!("Note: |E| counts directed edges after symmetrization, as in the paper.");
}
