//! **Figure 8 / §5.8** — FQDN analysis on the Web Data Commons graph.
//!
//! The paper attaches each page's fully qualified domain name as string
//! vertex metadata, counts FQDN 3-tuples over all triangles with three
//! distinct FQDNs (248.7B triangles, 39.2B unique tuples on the real
//! graph), then post-processes: all tuples containing "amazon.com" form
//! a 2D co-occurrence distribution whose rows/columns are ordered by
//! Louvain communities — revealing the Amazon family, the competing
//! bookseller abebooks.com, and an education/library community.
//!
//! §5.8 also reports the cost of carrying the string metadata: 1694.6s
//! for the survey vs 456.7s for metadata-free counting (~3.7x). This
//! harness reproduces both the narrative and the overhead ratio.

use std::time::Instant;

use tripoll_analysis::{louvain_labeled, Table};
use tripoll_bench::{fmt_secs, seed, size, world};
use tripoll_core::surveys::count::triangle_count;
use tripoll_core::surveys::fqdn_tuples::fqdn_tuple_survey;
use tripoll_core::EngineMode;
use tripoll_gen::wdc_like;
use tripoll_graph::{build_dist_graph, DistGraph, EdgeList, Partition};

fn main() {
    let nranks = 4;
    println!(
        "Reproducing Fig. 8 / §5.8 (FQDN survey) on {nranks} ranks at {:?} scale\n",
        size()
    );
    let web = wdc_like(size(), seed());
    let list =
        EdgeList::from_vec(web.edges.iter().map(|&(u, v)| (u, v, ())).collect()).canonicalize();

    // --- metadata-free counting (the §5.8 baseline time) ----------------
    let plain = {
        let list = &list;
        world(nranks).run(|comm| {
            let start = Instant::now();
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g: DistGraph<bool, ()> =
                build_dist_graph(comm, local, |_| false, Partition::Hashed);
            let (count, _) = triangle_count(comm, &g, EngineMode::PushPull);
            (count, start.elapsed().as_secs_f64())
        })
    };
    let plain_wall = plain.iter().map(|r| r.1).fold(0.0, f64::max);

    // --- FQDN survey ------------------------------------------------------
    let fqdn_fn = web.fqdn_fn();
    let out = {
        let list = &list;
        world(nranks).run(move |comm| {
            let start = Instant::now();
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g: DistGraph<String, ()> =
                build_dist_graph(comm, local, fqdn_fn.clone(), Partition::Hashed);
            let (result, _) = fqdn_tuple_survey(comm, &g, EngineMode::PushPull);
            (result, start.elapsed().as_secs_f64())
        })
    };
    let (result, _) = &out[0];
    let survey_wall = out.iter().map(|r| r.1).fold(0.0, f64::max);

    let mut summary = Table::new(
        "§5.8 summary",
        &[
            "plain count",
            "distinct-FQDN triangles",
            "unique 3-tuples",
            "plain time",
            "survey time",
            "overhead",
        ],
    );
    summary.row(&[
        plain[0].0.to_string(),
        result.distinct_triangles.to_string(),
        result.unique_tuples().to_string(),
        fmt_secs(plain_wall),
        fmt_secs(survey_wall),
        format!("{:.2}x (paper: 3.71x)", survey_wall / plain_wall.max(1e-9)),
    ]);
    println!("{}", summary.render());

    // --- Fig. 8 post-processing ------------------------------------------
    // Communities come from the *full* FQDN co-occurrence graph (every
    // tuple contributes its three pairs, weighted by count); the rows of
    // the hub's 2-D distribution are then ordered by those communities,
    // as the paper orders Fig. 8's axes by the Louvain method.
    let hub = "amazon.example";
    let pairs = result.pairs_with(hub);
    assert!(!pairs.is_empty(), "no triangles involve the hub domain");
    let mut co_weights: std::collections::BTreeMap<(String, String), f64> =
        std::collections::BTreeMap::new();
    for ((a, b, c), count) in &result.tuples {
        for (x, y) in [(a, b), (a, c), (b, c)] {
            *co_weights.entry((x.clone(), y.clone())).or_insert(0.0) += *count as f64;
        }
    }
    let co_edges: Vec<(String, String, f64)> = co_weights
        .into_iter()
        .map(|((a, b), w)| (a, b, w))
        .collect();
    let (all_communities, louvain) = louvain_labeled(&co_edges);
    // Restrict the display to FQDNs that co-occur with the hub.
    let in_pairs: std::collections::BTreeSet<&str> = pairs
        .iter()
        .flat_map(|(a, b, _)| [a.as_str(), b.as_str()])
        .collect();
    let communities: Vec<(String, usize)> = all_communities
        .iter()
        .filter(|(name, _)| in_pairs.contains(name.as_str()))
        .cloned()
        .collect();

    let mut fig8 = Table::new(
        format!(
            "Fig. 8: FQDNs co-occurring in triangles with \"{hub}\" (Louvain-ordered, Q={:.3})",
            louvain.modularity
        ),
        &["community", "FQDN", "co-occurrence weight"],
    );
    // Order rows by (community, descending weight).
    let weight_of = |name: &str| -> u64 {
        pairs
            .iter()
            .filter(|(a, b, _)| a == name || b == name)
            .map(|(_, _, c)| c)
            .sum()
    };
    let mut rows: Vec<(usize, String, u64)> = communities
        .iter()
        .map(|(name, com)| (*com, name.clone(), weight_of(name)))
        .collect();
    rows.sort_by_key(|a| (a.0, std::cmp::Reverse(a.2)));
    for (com, name, w) in rows.iter().take(30) {
        fig8.row(&[com.to_string(), name.clone(), w.to_string()]);
    }
    println!("{}", fig8.render());

    // Narrative checks: the Amazon family co-occurs with the hub; the
    // bookseller and the library community are present.
    let names: Vec<&str> = communities.iter().map(|(n, _)| n.as_str()).collect();
    for expect in ["amazon.co.example", "abebooks.example"] {
        assert!(
            names.contains(&expect),
            "{expect} missing from the hub's triangle neighborhood"
        );
    }
    let com_of = |name: &str| {
        all_communities
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
    };
    if let (Some(lib_a), Some(lib_b)) = (com_of("lib0.edu.example"), com_of("lib1.edu.example")) {
        assert_eq!(lib_a, lib_b, "library domains should share a community");
    }
    println!(
        "Louvain grouped {} FQDNs into {} communities; library domains cluster together.",
        communities.len(),
        louvain.num_communities()
    );
}
