//! Ablations of the design choices DESIGN.md calls out.
//!
//! Not a paper table — these sweeps justify the substrate's knobs:
//!
//! 1. **Message buffering** (§4.1.1): sweep the flush threshold and show
//!    how aggregation collapses the envelope count (and the modeled
//!    latency term) at identical payload volume. This is YGM's founding
//!    trick; threshold → 0 degenerates to the "naïve workflow" the paper
//!    contrasts against.
//! 2. **Partitioning** (§4.2): Cyclic vs Hashed vertex ownership on a
//!    hub-heavy web graph — the paper argues the DODGr transformation
//!    makes cheap partitionings palatable; both should land close.
//! 3. **Counting-set cache** (§4.1.4): sweep the write-back cache
//!    capacity and show how it trades records on the wire for memory.
//! 4. **Node-level aggregation** (§5.4): the paper attributes its
//!    256-node regression to small-message blowup across 18.8M rank
//!    pairs and prescribes "extra aggregation of messages at the level
//!    of compute nodes"; this sweep turns that remedy on and shows the
//!    network envelope count collapsing at constant payload.

use tripoll_analysis::{fmt_bytes, fmt_secs, Table};
use tripoll_bench::{seed, size};
use tripoll_core::surveys::count::triangle_count;
use tripoll_core::EngineMode;
use tripoll_gen::webcc12_like;
use tripoll_graph::{build_dist_graph, DistGraph, EdgeList, Partition};
use tripoll_ygm::container::DistCountingSet;
use tripoll_ygm::{CommConfig, CostModel, World};

fn main() {
    let nranks = 4;
    let web = webcc12_like(size(), seed());
    let list = EdgeList::from_vec(
        web.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    println!(
        "Ablations on the web-cc12 stand-in ({} edges) with {nranks} ranks\n",
        list.len()
    );
    let model = CostModel::catalyst_like();

    // --- 1. Buffering threshold -------------------------------------------
    let mut buf_table = Table::new(
        "Ablation 1: flush threshold vs envelopes (Push-Pull count)",
        &["threshold", "envelopes", "payload", "modeled time"],
    );
    for threshold in [64usize, 1024, 8 * 1024, 64 * 1024, 1 << 20] {
        let out = World::new(nranks)
            .with_config(CommConfig {
                flush_threshold: Some(threshold),
                ..Default::default()
            })
            .run_with_stats(|comm| {
                let local = list.stride_for_rank(comm.rank(), comm.nranks());
                let g: DistGraph<bool, ()> =
                    build_dist_graph(comm, local, |_| false, Partition::Hashed);
                triangle_count(comm, &g, EngineMode::PushPull).0
            });
        let total = out.total_stats();
        buf_table.row(&[
            fmt_bytes(threshold as u64),
            (total.envelopes_remote + total.envelopes_local).to_string(),
            fmt_bytes(total.bytes_total()),
            fmt_secs(model.phase_time(&out.stats)),
        ]);
    }
    println!("{}", buf_table.render());
    println!("Expected: payload constant; envelopes (and the α term) collapse as the\nthreshold grows — the §4.1.1 aggregation story.\n");

    // --- 2. Partitioning ----------------------------------------------------
    let mut part_table = Table::new(
        "Ablation 2: Cyclic vs Hashed partitioning (Push-Pull count)",
        &["partition", "|T|", "payload", "modeled time"],
    );
    for partition in [Partition::Cyclic, Partition::Hashed] {
        let out = World::new(nranks).run_with_stats(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g: DistGraph<bool, ()> = build_dist_graph(comm, local, |_| false, partition);
            triangle_count(comm, &g, EngineMode::PushPull).0
        });
        part_table.row(&[
            format!("{partition:?}"),
            out.results[0].to_string(),
            fmt_bytes(out.total_stats().bytes_total()),
            fmt_secs(model.phase_time(&out.stats)),
        ]);
    }
    println!("{}", part_table.render());
    println!("Expected: identical counts; comparable cost — the DODGr tames the hubs\nthat would otherwise punish cheap partitionings (§4.2).\n");

    // --- 3. Counting-set cache ---------------------------------------------
    let mut cache_table = Table::new(
        "Ablation 3: counting-set cache capacity (degree-pair survey)",
        &["cache", "records", "payload"],
    );
    for capacity in [1usize, 16, 256, 4096] {
        let out = World::new(nranks).run_with_stats(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g: DistGraph<bool, ()> =
                build_dist_graph(comm, local, |_| false, Partition::Hashed);
            let before = comm.stats();
            let set = DistCountingSet::<(u64, u64)>::with_cache_capacity(comm, capacity);
            let set_cb = set.clone();
            tripoll_core::survey(comm, &g, EngineMode::PushPull, move |c, tm| {
                set_cb.increment(c, (tm.p % 64, tm.q % 64));
            });
            set.finalize(comm);
            comm.stats().delta(&before)
        });
        let total: tripoll_ygm::CommStats = tripoll_ygm::CommStats::sum(out.results.iter());
        cache_table.row(&[
            capacity.to_string(),
            total.records_total().to_string(),
            fmt_bytes(total.bytes_total()),
        ]);
    }
    println!("{}", cache_table.render());
    println!("Expected: a larger write-back cache absorbs repeated keys, cutting the\nrecords the counting set puts on the wire (§4.1.4).\n");

    // --- 4. Node-level aggregation (the §5.4 remedy) -----------------------
    let mut node_table = Table::new(
        "Ablation 4: ranks per simulated node (Push-Pull count, 8 ranks)",
        &[
            "ranks/node",
            "network envelopes",
            "network payload",
            "modeled time",
        ],
    );
    for ranks_per_node in [1usize, 2, 4, 8] {
        let out = World::new(8)
            .with_config(CommConfig {
                ranks_per_node,
                ..Default::default()
            })
            .run_with_stats(|comm| {
                let local = list.stride_for_rank(comm.rank(), comm.nranks());
                let g: DistGraph<bool, ()> =
                    build_dist_graph(comm, local, |_| false, Partition::Hashed);
                triangle_count(comm, &g, EngineMode::PushPull).0
            });
        let total = out.total_stats();
        node_table.row(&[
            ranks_per_node.to_string(),
            total.envelopes_remote.to_string(),
            fmt_bytes(total.bytes_remote),
            fmt_secs(model.phase_time(&out.stats)),
        ]);
    }
    println!("{}", node_table.render());
    println!(
        "Expected: bundling a node's sections into one envelope divides the\n\
         network message count (the α term) — the paper's prescription for\n\
         the 6144-rank small-message regime (§5.4)."
    );
}
