//! **Table 4** — Push-Only vs Push-Pull: runtime *and* communication
//! volume across rank counts.
//!
//! The paper's central ablation (§5.10): for Friendster, Twitter,
//! uk-2007-05 and web-cc12-hostgraph, strong-scale both engines and
//! report total communication volume alongside runtime. Expected
//! shapes, which this harness checks:
//!
//! * **Push-Only volume is flat** across rank counts (every wedge batch
//!   crosses the network regardless of placement, minus the self-rank
//!   share);
//! * **Push-Pull volume grows with ranks** (fewer aggregation
//!   opportunities per rank → fewer profitable pulls), approaching the
//!   Push-Only volume;
//! * on the **web graphs** Push-Pull cuts traffic by large factors
//!   (>10x on web-cc12 in the paper) and wins runtime decisively;
//! * on **Friendster-like** graphs (mild hubs) the dry-run overhead can
//!   exceed the savings — Push-Only stays competitive, and Push-Pull's
//!   volume can even overtake it at high rank counts.

use tripoll_analysis::{fmt_bytes, Table};
use tripoll_bench::{fmt_secs, rank_series, run_count, seed, size};
use tripoll_core::EngineMode;
use tripoll_gen::table4_suite;

fn main() {
    let ranks = rank_series();
    println!(
        "Reproducing Table 4 (Push-Only vs Push-Pull) on ranks {ranks:?} at {:?} scale\n",
        size()
    );

    for ds in table4_suite(size(), seed()) {
        let list = ds.edge_list();
        let mut table = Table::new(
            format!("Table 4: {}", ds.name),
            &[
                "measurement",
                "engine",
                &ranks
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(" | "),
            ],
        );

        let mut volumes = [Vec::new(), Vec::new()];
        let mut times = [Vec::new(), Vec::new()];
        let mut counts = Vec::new();
        for &n in &ranks {
            for (i, mode) in [EngineMode::PushOnly, EngineMode::PushPull]
                .into_iter()
                .enumerate()
            {
                let run = run_count(&list, n, mode);
                volumes[i].push(run.bytes_total);
                times[i].push(run.modeled_seconds);
                counts.push(run.triangles);
            }
        }
        assert!(counts.iter().all(|&c| c == counts[0]), "count mismatch");

        for (i, engine) in ["Push-Only", "Push-Pull"].iter().enumerate() {
            table.row(&[
                "comm volume".to_string(),
                engine.to_string(),
                volumes[i]
                    .iter()
                    .map(|&b| fmt_bytes(b))
                    .collect::<Vec<_>>()
                    .join(" | "),
            ]);
        }
        for (i, engine) in ["Push-Only", "Push-Pull"].iter().enumerate() {
            table.row(&[
                "runtime (modeled)".to_string(),
                engine.to_string(),
                times[i]
                    .iter()
                    .map(|&t| fmt_secs(t))
                    .collect::<Vec<_>>()
                    .join(" | "),
            ]);
        }
        println!("{}", table.render());

        // Shape assertions recorded in EXPERIMENTS.md.
        let last = ranks.len() - 1;
        if ranks.len() > 1 && volumes[1][0] > 0 {
            let growth = volumes[1][last] as f64 / volumes[1][0] as f64;
            println!(
                "  Push-Pull volume growth {}→{} ranks: {growth:.2}x (paper: grows with ranks)",
                ranks[0], ranks[last]
            );
        }
        if volumes[1][0] > 0 {
            println!(
                "  volume reduction vs Push-Only at {} ranks: {:.2}x\n",
                ranks[0],
                volumes[0][0] as f64 / volumes[1][0] as f64
            );
        }
    }
    println!(
        "Communication volume = exact payload bytes summed over ranks (incl. same-rank\n\
         traffic, which on the paper's 24-rank-per-node clusters is ordinary MPI volume)."
    );
}
