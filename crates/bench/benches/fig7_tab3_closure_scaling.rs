//! **Figure 7 + Table 3** — strong scaling of the closure-time survey.
//!
//! The paper scales the Reddit survey from 16 to 256 nodes, breaking
//! time into the dry-run ("determine which vertices to pull"), push and
//! pull phases, and reports the average number of adjacency lists
//! pulled per rank (Table 3: 861K at 16 nodes shrinking to 42.2K at
//! 256). Expected shapes:
//!
//! * overall time scales well on this social graph;
//! * the algorithm *shifts from pull-heavy to push-heavy* as ranks grow
//!   (fewer edges per rank → less aggregation → fewer granted pulls);
//! * pulls per rank decrease monotonically with rank count.

use tripoll_analysis::Table;
use tripoll_bench::{fmt_secs, rank_series, seed, size, world};
use tripoll_core::surveys::closure_times::closure_time_survey;
use tripoll_core::EngineMode;
use tripoll_gen::reddit_like;
use tripoll_graph::{build_dist_graph, DistGraph, Partition};
use tripoll_ygm::{CommStats, CostModel};

fn main() {
    let ranks = rank_series();
    println!(
        "Reproducing Fig. 7 / Table 3 (closure survey scaling) on ranks {ranks:?} at {:?} scale\n",
        size()
    );

    let edges = reddit_like(size(), seed());
    let model = CostModel::catalyst_like();

    let mut fig7 = Table::new(
        "Fig. 7: closure-time survey phase breakdown (modeled)",
        &[
            "ranks", "dry-run", "push", "pull", "total", "speedup", "wall",
        ],
    );
    let mut tab3 = Table::new(
        "Table 3: average adjacency lists pulled per rank",
        &["ranks", "avg pulls/rank", "total grants"],
    );

    let mut base: Option<f64> = None;
    let mut prev_pulls = f64::INFINITY;
    for &n in &ranks {
        let out = world(n).run(|comm| {
            let local = edges.stride_for_rank(comm.rank(), comm.nranks());
            let g: DistGraph<(), u64> = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let (hist, report) = closure_time_survey(comm, &g, EngineMode::PushPull, |&t| t);
            (hist.total(), report)
        });
        let total_triangles = out[0].0;
        assert!(out.iter().all(|(t, _)| *t == total_triangles));

        let phase_modeled = |idx: usize| {
            let per_rank: Vec<CommStats> = out.iter().map(|(_, r)| r.phases[idx].stats).collect();
            model.phase_time(&per_rank)
        };
        let dry = phase_modeled(0);
        let push = phase_modeled(1);
        let pull = phase_modeled(2);
        let total = dry + push + pull;
        let wall = out.iter().map(|(_, r)| r.total_seconds).fold(0.0, f64::max);
        let b = *base.get_or_insert(total);
        fig7.row(&[
            n.to_string(),
            fmt_secs(dry),
            fmt_secs(push),
            fmt_secs(pull),
            fmt_secs(total),
            format!("{:.2}x", b / total.max(1e-12)),
            fmt_secs(wall),
        ]);

        let pulls: u64 = out.iter().map(|(_, r)| r.pulled_vertices).sum();
        let grants: u64 = out.iter().map(|(_, r)| r.pull_grants).sum();
        let per_rank = pulls as f64 / n as f64;
        tab3.row(&[n.to_string(), format!("{per_rank:.1}"), grants.to_string()]);
        assert!(
            per_rank <= prev_pulls,
            "pulls per rank should shrink with rank count"
        );
        prev_pulls = per_rank;
    }
    println!("{}", fig7.render());
    println!("{}", tab3.render());
    println!("Expected: pull share shrinks as ranks grow (Table 3's 861K → 42.2K trend).");
}
