//! # tripoll-bench — the experiment harness
//!
//! Shared plumbing for the `benches/` targets, each of which regenerates
//! one table or figure of the TriPoll paper's evaluation (§5). Run them
//! all with `cargo bench --workspace`, or one at a time:
//!
//! ```text
//! cargo bench -p tripoll-bench --bench tab4_push_vs_pushpull
//! ```
//!
//! ## Knobs (environment variables)
//!
//! * `TRIPOLL_BENCH_SIZE` — `tiny` / `small` (default) / `medium`
//!   dataset presets.
//! * `TRIPOLL_BENCH_RANKS` — comma-separated simulated rank counts
//!   (default `1,2,4,8`). One simulated rank stands for one of the
//!   paper's compute nodes.
//! * `TRIPOLL_BENCH_SEED` — generator seed (default 42).
//!
//! ## Reading the output
//!
//! Each run reports **measured** wall-clock of the threaded simulation
//! *and* **modeled** cluster time from the α-β-γ cost model applied to
//! the exact per-rank communication counters (see
//! `tripoll_ygm::cost`). On a development box the modeled numbers carry
//! the scaling shapes (the paper's cluster had 24 cores per node; this
//! harness typically oversubscribes a couple of cores), while measured
//! communication volumes are exact — those are what Table 4 compares.

#![warn(missing_docs)]

use tripoll_core::{EngineMode, SurveyReport};
use tripoll_gen::DatasetSize;
use tripoll_graph::{build_dist_graph, DistGraph, EdgeList, GraphStats, Partition};
use tripoll_ygm::stats::CommStats;
use tripoll_ygm::{CommConfig, CostModel, World};

/// Simulated rank counts to sweep (env `TRIPOLL_BENCH_RANKS`).
pub fn rank_series() -> Vec<usize> {
    std::env::var("TRIPOLL_BENCH_RANKS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Dataset size preset (env `TRIPOLL_BENCH_SIZE`).
pub fn size() -> DatasetSize {
    DatasetSize::from_env()
}

/// Generator seed (env `TRIPOLL_BENCH_SEED`).
pub fn seed() -> u64 {
    std::env::var("TRIPOLL_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// World configuration used by all experiments.
pub fn world(nranks: usize) -> World {
    World::new(nranks).with_config(CommConfig::default())
}

/// Aggregated outcome of one survey run at one rank count.
#[derive(Debug, Clone)]
pub struct CountRun {
    /// Simulated ranks.
    pub nranks: usize,
    /// Engine used.
    pub mode: EngineMode,
    /// Global triangle count (sanity anchor across configurations).
    pub triangles: u64,
    /// Survey wall-clock (max over ranks), seconds.
    pub wall_seconds: f64,
    /// Per phase: (name, max wall over ranks, modeled cluster seconds).
    pub phases: Vec<(String, f64, f64)>,
    /// Remote bytes summed over ranks.
    pub bytes_remote: u64,
    /// All payload bytes summed over ranks (local + remote). This is the
    /// Table 4 "communication volume" analogue: with the paper's 192+
    /// MPI ranks, same-rank traffic is negligible, so their measured MPI
    /// volume corresponds to our total; at 1-8 simulated ranks the
    /// remote-only number would be distorted by the large self share.
    pub bytes_total: u64,
    /// Remote records summed over ranks.
    pub records_remote: u64,
    /// Modeled cluster time for the whole survey, seconds.
    pub modeled_seconds: f64,
    /// Mean adjacency lists pulled per rank (Table 3).
    pub avg_pulls_per_rank: f64,
    /// `|W+|` of the graph (work measure for weak scaling).
    pub wedges: u64,
    /// Graph statistics (shared across configurations of a dataset).
    pub graph: GraphStats,
}

/// Builds the DODGr and runs a counting survey on `nranks` simulated
/// ranks, aggregating per-rank reports.
pub fn run_count(edges: &EdgeList<()>, nranks: usize, mode: EngineMode) -> CountRun {
    let out = world(nranks).run(|comm| {
        let local = edges.stride_for_rank(comm.rank(), comm.nranks());
        // Dummy boolean vertex metadata, as the paper affixes for plain
        // counting (§5.3).
        let graph: DistGraph<bool, ()> =
            build_dist_graph(comm, local, |_| false, Partition::Hashed);
        let stats = graph.global_stats(comm);
        let (count, report) = tripoll_core::surveys::count::triangle_count(comm, &graph, mode);
        (count, report, stats)
    });
    aggregate(nranks, mode, out)
}

/// Folds per-rank `(count, report, stats)` tuples into a [`CountRun`].
pub fn aggregate(
    nranks: usize,
    mode: EngineMode,
    out: Vec<(u64, SurveyReport, GraphStats)>,
) -> CountRun {
    let model = CostModel::catalyst_like();
    let triangles = out[0].0;
    let graph = out[0].2;
    assert!(
        out.iter().all(|(c, _, _)| *c == triangles),
        "ranks disagree on the triangle count"
    );
    let reports: Vec<&SurveyReport> = out.iter().map(|(_, r, _)| r).collect();

    let phase_names: Vec<String> = reports[0]
        .phases
        .iter()
        .map(|p| p.name.to_string())
        .collect();
    let mut phases = Vec::new();
    let mut modeled_total = 0.0;
    for (i, name) in phase_names.iter().enumerate() {
        let wall = reports
            .iter()
            .map(|r| r.phases[i].seconds)
            .fold(0.0, f64::max);
        let per_rank: Vec<CommStats> = reports.iter().map(|r| r.phases[i].stats).collect();
        let modeled = model.phase_time(&per_rank);
        modeled_total += modeled;
        phases.push((name.clone(), wall, modeled));
    }

    let total_stats = CommStats::sum(
        reports
            .iter()
            .map(|r| r.local_stats())
            .collect::<Vec<_>>()
            .iter(),
    );
    let wall_seconds = reports.iter().map(|r| r.total_seconds).fold(0.0, f64::max);
    let avg_pulls_per_rank =
        reports.iter().map(|r| r.pulled_vertices).sum::<u64>() as f64 / nranks as f64;

    CountRun {
        nranks,
        mode,
        triangles,
        wall_seconds,
        phases,
        bytes_remote: total_stats.bytes_remote,
        bytes_total: total_stats.bytes_total(),
        records_remote: total_stats.records_remote,
        modeled_seconds: modeled_total,
        avg_pulls_per_rank,
        wedges: graph.wedges,
        graph,
    }
}

/// Pretty milli/second formatting re-exported for bench targets.
pub use tripoll_analysis::{fmt_bytes, fmt_secs, Table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_series_default() {
        if std::env::var("TRIPOLL_BENCH_RANKS").is_err() {
            assert_eq!(rank_series(), vec![1, 2, 4, 8]);
        }
    }

    #[test]
    fn run_count_on_tiny_graph() {
        let edges = EdgeList::from_vec(vec![
            (0u64, 1u64, ()),
            (1, 2, ()),
            (2, 0, ()),
            (2, 3, ()),
            (3, 0, ()),
        ]);
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            let run = run_count(&edges, 2, mode);
            assert_eq!(run.triangles, 2);
            assert_eq!(run.nranks, 2);
            assert!(run.wall_seconds >= 0.0);
            assert!(run.modeled_seconds >= 0.0);
            match mode {
                EngineMode::PushOnly => assert_eq!(run.phases.len(), 1),
                EngineMode::PushPull => assert_eq!(run.phases.len(), 3),
            }
        }
    }

    #[test]
    fn push_pull_phases_named() {
        let edges = EdgeList::from_vec(vec![(0u64, 1u64, ()), (1, 2, ()), (2, 0, ())]);
        let run = run_count(&edges, 1, EngineMode::PushPull);
        let names: Vec<&str> = run.phases.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["dry-run", "push", "pull"]);
    }
}
