//! Bench-regression gate over `BENCH_micro.json`.
//!
//! ```text
//! cargo run -p tripoll-bench --bin bench_diff -- <baseline.json> <new.json>
//! ```
//!
//! Compares the deterministic perf proxies of a fresh bench run against
//! the committed baseline and exits non-zero on a regression:
//!
//! * `recv_path.cursor` allocs-per-batch — the zero-copy receive
//!   property of the interleaved cursor decoders;
//! * `batch_layout.columnar` decode allocs-per-batch — the zero-alloc
//!   invariant of the production columnar recv path (a zero baseline
//!   means **any** allocation fails, not a percentage);
//! * `batch_layout.columnar` bytes-per-candidate — the communication
//!   volume the SoA layout exists to shrink;
//! * `intersect_kernel.compares_per_candidate` — the Auto kernel's
//!   deterministic key-compare count per candidate, summed over the
//!   fixed skew points (balanced, 10:1, 1000:1 and its reverse) — the
//!   work the gallop and blocked kernels exist to avoid;
//! * `parallel_dispatch.parallel_compares_per_candidate` — the merged
//!   compare counters of a 4-thread survey. Gated at **0%** in both
//!   directions: the parallel reduction is defined to be bit-identical
//!   to serial, so any drift is a broken stats merge, not a perf
//!   change.
//! * `node_aggregation.multicast_bytes_per_candidate` — the rpn = 4
//!   pull fan-out's wire bytes per delivered candidate, every byte
//!   counted at send time. This is the payload-dedup half of the §5.4
//!   node aggregation: a regression means `send_to_many` went back to
//!   copying the projection once per co-node rank.
//! * `snapshot_restart.snapshot_bytes` — the resident service's
//!   snapshot size for the fixed survey graph. Deterministic for a
//!   given format version; growth means the binary format got fatter
//!   (the restart timings next to it are wall-clock context and stay
//!   ungated).
//! * `incremental_ingest.delta_bytes_per_candidate` — the delta
//!   survey's wire bytes per kernel candidate after a 1% batch ingest.
//!   The delta path shares the encode-once/columnar wire with the full
//!   engines, so growth means delta wedge batches got fatter than the
//!   wedges they replace (the delta-vs-recount timings next to it are
//!   wall-clock context and stay ungated).
//!
//! Each growth gate allows 10% relative growth over the baseline;
//! wall-time numbers are deliberately *not* gated (CI machines are too
//! noisy), while allocation counts, encoded byte volumes and kernel
//! compare counters are deterministic.
//!
//! The parser is a minimal scraper for the known
//! `tripoll-bench-micro/v9` schema (the container vendors no JSON
//! crate); a baseline predating a gated section passes with a notice so
//! a gate can be adopted in the same change that introduces its
//! section.

use std::process::ExitCode;

/// Allowed relative growth of a gated metric before the gate fails.
const MAX_REGRESSION: f64 = 0.10;

/// Returns the text after the first occurrence of `"key"` in `s`.
fn after_key<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    Some(&s[s.find(&needle)? + needle.len()..])
}

/// Reads the number following `"key":` in `s` (first occurrence).
fn number_after(s: &str, key: &str) -> Option<f64> {
    let t = after_key(s, key)?;
    let t = t[t.find(':')? + 1..].trim_start();
    let end = t
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(t.len());
    t[..end].parse().ok()
}

/// Extracts `recv_path.cursor` allocs-per-batch from one report.
fn recv_allocs_per_batch(json: &str) -> Option<f64> {
    let recv = after_key(json, "recv_path")?;
    let batches = number_after(recv, "batches")?;
    let cursor = after_key(recv, "cursor")?;
    let allocs = number_after(cursor, "allocs")?;
    if batches <= 0.0 {
        return None;
    }
    Some(allocs / batches)
}

/// Extracts `batch_layout.columnar` decode allocs-per-batch.
fn columnar_decode_allocs_per_batch(json: &str) -> Option<f64> {
    let layout = after_key(json, "batch_layout")?;
    let batches = number_after(layout, "batches")?;
    let columnar = after_key(layout, "columnar")?;
    let allocs = number_after(columnar, "decode_allocs")?;
    if batches <= 0.0 {
        return None;
    }
    Some(allocs / batches)
}

/// Extracts `batch_layout.columnar` bytes-per-candidate.
fn columnar_bytes_per_candidate(json: &str) -> Option<f64> {
    let layout = after_key(json, "batch_layout")?;
    let columnar = after_key(layout, "columnar")?;
    number_after(columnar, "bytes_per_candidate")
}

/// Extracts `intersect_kernel.compares_per_candidate` (the Auto
/// kernel's deterministic summary, first field of its section; the
/// per-kernel skew entries use a distinct key — and the quoted-needle
/// match keeps `simd_compares_per_candidate` from aliasing — so this
/// scrape cannot drift onto them).
fn kernel_compares_per_candidate(json: &str) -> Option<f64> {
    let section = after_key(json, "intersect_kernel")?;
    number_after(section, "compares_per_candidate")
}

/// Extracts `intersect_kernel.simd_compares_per_candidate` — the SIMD
/// kernel's deterministic wide-compare count per candidate, summed
/// over the fixed skew points. Backend-independent by construction
/// (one compare per probe group whether AVX2, SSE2 or SWAR ran), so
/// it gates cleanly on heterogeneous CI hardware.
fn simd_compares_per_candidate(json: &str) -> Option<f64> {
    let section = after_key(json, "intersect_kernel")?;
    number_after(section, "simd_compares_per_candidate")
}

/// Extracts `parallel_dispatch.parallel_compares_per_candidate` — the
/// merged kernel compare counters of a 4-thread Push-Pull survey,
/// normalized per candidate. The per-worker tallies reduce in
/// batch-index order, so the value is deterministic down to the bit.
fn parallel_compares_per_candidate(json: &str) -> Option<f64> {
    let section = after_key(json, "parallel_dispatch")?;
    number_after(section, "parallel_compares_per_candidate")
}

/// Extracts `node_aggregation.multicast_bytes_per_candidate` — the
/// rpn = 4 pull fan-out's wire bytes per delivered candidate (the
/// section's first field; the flat rpn = 1 twin uses a distinct key).
fn multicast_bytes_per_candidate(json: &str) -> Option<f64> {
    let section = after_key(json, "node_aggregation")?;
    number_after(section, "multicast_bytes_per_candidate")
}

/// Extracts `snapshot_restart.snapshot_bytes` — the resident service's
/// snapshot size for the fixed survey graph (the section's first
/// field; deterministic for a given snapshot format version).
fn snapshot_bytes(json: &str) -> Option<f64> {
    let section = after_key(json, "snapshot_restart")?;
    number_after(section, "snapshot_bytes")
}

/// Extracts `incremental_ingest.delta_bytes_per_candidate` — the delta
/// survey's wire bytes per kernel candidate at the 1% batch point (the
/// section's first field; the per-point entries use the distinct
/// `delta_bytes` key, which the quoted-needle match keeps apart even
/// though it is a prefix of this one).
fn delta_bytes_per_candidate(json: &str) -> Option<f64> {
    let section = after_key(json, "incremental_ingest")?;
    number_after(section, "delta_bytes_per_candidate")
}

/// One gated metric: compares fresh vs baseline under the shared
/// regression policy. Returns false on failure. A zero baseline is an
/// invariant, not a ratio: any growth at all fails.
fn gate(name: &str, baseline: Option<f64>, fresh: Option<f64>, new_path: &str) -> bool {
    let Some(new_v) = fresh else {
        eprintln!("bench_diff: {new_path} has no {name} metric — did the micro bench run?");
        return false;
    };
    let Some(base_v) = baseline else {
        println!(
            "bench_diff: baseline predates the {name} metric; gate passes \
             (new value {new_v:.4} — commit the fresh BENCH_micro.json to make it the reference)"
        );
        return true;
    };
    println!("{name}: baseline {base_v:.4}, new {new_v:.4}");
    let limit = if base_v == 0.0 {
        0.0
    } else {
        base_v * (1.0 + MAX_REGRESSION)
    };
    if new_v > limit {
        eprintln!(
            "bench_diff: FAIL — {name} regressed beyond {:.0}% ({base_v:.4} -> {new_v:.4})",
            MAX_REGRESSION * 100.0
        );
        return false;
    }
    println!("bench_diff: OK (limit {limit:.4})");
    true
}

/// A determinism gate: the fresh value must equal the baseline exactly
/// (0% tolerance, both directions). Used for metrics whose *identity*
/// is the invariant — the parallel merge's reduced counters — where a
/// decrease is as much a bug as an increase. The missing-baseline
/// adoption path matches [`gate`].
fn gate_exact(name: &str, baseline: Option<f64>, fresh: Option<f64>, new_path: &str) -> bool {
    let Some(new_v) = fresh else {
        eprintln!("bench_diff: {new_path} has no {name} metric — did the micro bench run?");
        return false;
    };
    let Some(base_v) = baseline else {
        println!(
            "bench_diff: baseline predates the {name} metric; gate passes \
             (new value {new_v:.4} — commit the fresh BENCH_micro.json to make it the reference)"
        );
        return true;
    };
    println!("{name}: baseline {base_v:.4}, new {new_v:.4}");
    if new_v != base_v {
        eprintln!("bench_diff: FAIL — {name} drifted ({base_v:.4} -> {new_v:.4}); tolerance is 0%");
        return false;
    }
    println!("bench_diff: OK (exact)");
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, new_path] = &args[..] else {
        eprintln!("usage: bench_diff <baseline.json> <new.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(new_path)) else {
        return ExitCode::FAILURE;
    };

    let ok = [
        gate(
            "recv-path candidate-list allocs/batch",
            recv_allocs_per_batch(&baseline),
            recv_allocs_per_batch(&fresh),
            new_path,
        ),
        gate(
            "columnar recv-path allocs/batch",
            columnar_decode_allocs_per_batch(&baseline),
            columnar_decode_allocs_per_batch(&fresh),
            new_path,
        ),
        gate(
            "columnar bytes/candidate",
            columnar_bytes_per_candidate(&baseline),
            columnar_bytes_per_candidate(&fresh),
            new_path,
        ),
        gate(
            "intersect-kernel compares/candidate",
            kernel_compares_per_candidate(&baseline),
            kernel_compares_per_candidate(&fresh),
            new_path,
        ),
        gate(
            "simd-kernel compares/candidate",
            simd_compares_per_candidate(&baseline),
            simd_compares_per_candidate(&fresh),
            new_path,
        ),
        gate_exact(
            "parallel-survey merged compares/candidate",
            parallel_compares_per_candidate(&baseline),
            parallel_compares_per_candidate(&fresh),
            new_path,
        ),
        gate(
            "multicast fan-out bytes/candidate",
            multicast_bytes_per_candidate(&baseline),
            multicast_bytes_per_candidate(&fresh),
            new_path,
        ),
        gate(
            "resident snapshot bytes",
            snapshot_bytes(&baseline),
            snapshot_bytes(&fresh),
            new_path,
        ),
        gate(
            "delta-wedge bytes/candidate",
            delta_bytes_per_candidate(&baseline),
            delta_bytes_per_candidate(&fresh),
            new_path,
        ),
    ]
    .into_iter()
    .all(|g| g);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "tripoll-bench-micro/v4",
  "recv_path": {
    "batches": 4096,
    "materialized": {"allocs": 4096, "allocs_per_batch": 1.0},
    "cursor": {"allocs": 0, "allocs_per_batch": 0.0000, "ns_per_batch": 687.1}
  },
  "batch_layout": {
    "batches": 4096,
    "candidates_per_batch": 64,
    "interleaved": {"bytes": 3203072, "bytes_per_candidate": 12.219, "decode_allocs": 0},
    "columnar": {"bytes": 2953216, "bytes_per_candidate": 11.266, "encode_allocs": 0, "decode_allocs": 0, "decode_allocs_per_batch": 0.0000, "decode_scalar_walk_ns_per_batch": 900.0, "decode_scalar_walk_allocs": 0},
    "bytes_reduction_pct": 7.8
  },
  "intersect_kernel": {
    "compares_per_candidate": 3.75,
    "simd_compares_per_candidate": 1.25,
    "block_len": 32,
    "skews": [
      {"skew": "balanced", "left": 4096, "right": 4096, "scalar": {"ns_per_candidate": 4.1, "kernel_compares_per_candidate": 2.0, "allocs": 0, "matches_per_iter": 2048}, "auto": {"ns_per_candidate": 3.0, "kernel_compares_per_candidate": 2.1, "allocs": 0, "matches_per_iter": 2048}}
    ]
  },
  "parallel_dispatch": {
    "parallel_compares_per_candidate": 2.5000,
    "serial_compares_per_candidate": 2.5000,
    "batches": 256,
    "candidates_per_batch": 512,
    "scaling": [
      {"threads": 1, "ns_per_batch": 9000.0, "speedup": 1.00},
      {"threads": 4, "ns_per_batch": 2500.0, "speedup": 3.60}
    ]
  },
  "node_aggregation": {
    "multicast_bytes_per_candidate": 2.577,
    "flat_bytes_per_candidate": 10.055,
    "verts": 256,
    "fanout": 4,
    "flat_bytes_remote": 1317888,
    "aggregated_bytes_remote": 337664,
    "records_multicast": 1024,
    "multicast_bytes_saved": 980224,
    "flush_inline_ns_per_send": 300.0,
    "flush_overlap_ns_per_send": 280.0
  },
  "snapshot_restart": {
    "snapshot_bytes": 44374,
    "cold_ingest_ns": 4400000.0,
    "snapshot_load_ns": 460000.0,
    "restart_speedup": 9.57,
    "resident_query_ns": 7000000.0,
    "fresh_query_ns": 9000000.0,
    "query_speedup": 1.29
  },
  "incremental_ingest": {
    "delta_bytes_per_candidate": 9.125,
    "points": [
      {"batch_pct": 1, "batch_edges": 80, "delta_triangles": 120, "delta_bytes": 73000, "delta_candidates": 8000, "delta_survey_ns": 400000.0, "full_recount_ns": 7000000.0, "delta_speedup": 17.50},
      {"batch_pct": 10, "batch_edges": 800, "delta_triangles": 1400, "delta_bytes": 700000, "delta_candidates": 80000, "delta_survey_ns": 1500000.0, "full_recount_ns": 7000000.0, "delta_speedup": 4.67}
    ]
  }
}"#;

    #[test]
    fn extracts_cursor_allocs() {
        assert_eq!(recv_allocs_per_batch(SAMPLE), Some(0.0));
    }

    #[test]
    fn missing_section_is_none() {
        assert_eq!(recv_allocs_per_batch("{\"schema\": \"v1\"}"), None);
        assert_eq!(
            columnar_decode_allocs_per_batch("{\"schema\": \"v1\"}"),
            None
        );
        assert_eq!(columnar_bytes_per_candidate("{\"schema\": \"v1\"}"), None);
        assert_eq!(kernel_compares_per_candidate("{\"schema\": \"v1\"}"), None);
    }

    #[test]
    fn extracts_kernel_compares() {
        // The section-level summary, not a per-kernel skew entry.
        assert_eq!(kernel_compares_per_candidate(SAMPLE), Some(3.75));
    }

    #[test]
    fn extracts_simd_compares() {
        // The quoted-needle match keeps the two summary keys apart
        // even though one is a suffix of the other.
        assert_eq!(simd_compares_per_candidate(SAMPLE), Some(1.25));
        assert_eq!(simd_compares_per_candidate("{\"schema\": \"v1\"}"), None);
        // A baseline predating the metric (this sample without the
        // key) must scrape as None, the adoption path.
        let pre = SAMPLE.replace("    \"simd_compares_per_candidate\": 1.25,\n", "");
        assert_eq!(simd_compares_per_candidate(&pre), None);
        assert_eq!(kernel_compares_per_candidate(&pre), Some(3.75));
    }

    #[test]
    fn nonzero_allocs_extracted() {
        let s = SAMPLE.replace("\"allocs\": 0,", "\"allocs\": 2048,");
        assert_eq!(recv_allocs_per_batch(&s), Some(0.5));
    }

    #[test]
    fn extracts_columnar_metrics() {
        assert_eq!(columnar_decode_allocs_per_batch(SAMPLE), Some(0.0));
        assert_eq!(columnar_bytes_per_candidate(SAMPLE), Some(11.266));
        // The interleaved object's decode_allocs must not shadow the
        // columnar one.
        let s = SAMPLE.replace(
            "\"bytes_per_candidate\": 11.266, \"encode_allocs\": 0, \"decode_allocs\": 0",
            "\"bytes_per_candidate\": 11.266, \"encode_allocs\": 0, \"decode_allocs\": 4096",
        );
        assert_eq!(columnar_decode_allocs_per_batch(&s), Some(1.0));
    }

    #[test]
    fn extracts_parallel_compares() {
        // The section's own summary, not the serial twin recorded next
        // to it (quoted-needle match keeps the two keys apart).
        assert_eq!(parallel_compares_per_candidate(SAMPLE), Some(2.5));
        assert_eq!(
            parallel_compares_per_candidate("{\"schema\": \"v1\"}"),
            None
        );
        // A baseline predating the section scrapes as None (adoption).
        let pre = &SAMPLE[..SAMPLE.find("\"parallel_dispatch\"").unwrap()];
        assert_eq!(parallel_compares_per_candidate(pre), None);
    }

    #[test]
    fn extracts_multicast_bytes() {
        // The section's gated summary, not the flat rpn=1 twin (its
        // key contains this one as a suffix, but the quoted-needle
        // match keeps them apart) and not batch_layout's
        // bytes_per_candidate (the section anchor skips past it).
        assert_eq!(multicast_bytes_per_candidate(SAMPLE), Some(2.577));
        assert_eq!(multicast_bytes_per_candidate("{\"schema\": \"v1\"}"), None);
        // A baseline predating the section scrapes as None (adoption).
        let pre = &SAMPLE[..SAMPLE.find("\"node_aggregation\"").unwrap()];
        assert_eq!(multicast_bytes_per_candidate(pre), None);
    }

    #[test]
    fn extracts_snapshot_bytes() {
        // The section's gated first field, not the ns timings beside
        // it and not any earlier section's byte counters (the section
        // anchor skips past them).
        assert_eq!(snapshot_bytes(SAMPLE), Some(44374.0));
        assert_eq!(snapshot_bytes("{\"schema\": \"v1\"}"), None);
        // A baseline predating the section scrapes as None — the
        // adoption path for the gate introduced with the section.
        let pre = &SAMPLE[..SAMPLE.find("\"snapshot_restart\"").unwrap()];
        assert_eq!(snapshot_bytes(pre), None);
    }

    #[test]
    fn extracts_delta_bytes_per_candidate() {
        // The section's gated first field, not the per-point
        // `delta_bytes` entries after it (a prefix of this key, kept
        // apart by the quoted-needle match) and not any earlier
        // section's bytes/candidate (the section anchor skips them).
        assert_eq!(delta_bytes_per_candidate(SAMPLE), Some(9.125));
        assert_eq!(delta_bytes_per_candidate("{\"schema\": \"v1\"}"), None);
        // A baseline predating the section scrapes as None — the
        // adoption path for the gate introduced with the section
        // (exactly how a committed v8 baseline passes a v9 run).
        let pre = &SAMPLE[..SAMPLE.find("\"incremental_ingest\"").unwrap()];
        assert_eq!(delta_bytes_per_candidate(pre), None);
        assert_eq!(snapshot_bytes(pre), Some(44374.0));
    }

    #[test]
    fn gate_exact_policy() {
        // Bit-equality required, both directions.
        assert!(gate_exact("g", Some(2.5), Some(2.5), "x"));
        assert!(!gate_exact("g", Some(2.5), Some(2.5001), "x"));
        assert!(!gate_exact("g", Some(2.5), Some(2.4999), "x"));
        // Adoption path: metric missing from the baseline passes.
        assert!(gate_exact("g", None, Some(2.5), "x"));
        // Metric missing from the fresh run fails.
        assert!(!gate_exact("g", Some(2.5), None, "x"));
    }

    #[test]
    fn gate_policy() {
        // Zero baseline: any allocation fails.
        assert!(gate("g", Some(0.0), Some(0.0), "x"));
        assert!(!gate("g", Some(0.0), Some(0.001), "x"));
        // Nonzero baseline: 10% headroom.
        assert!(gate("g", Some(10.0), Some(10.9), "x"));
        assert!(!gate("g", Some(10.0), Some(11.1), "x"));
        // Adoption path: metric missing from the baseline passes.
        assert!(gate("g", None, Some(5.0), "x"));
        // Metric missing from the fresh run fails.
        assert!(!gate("g", Some(1.0), None, "x"));
    }
}
