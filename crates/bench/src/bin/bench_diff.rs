//! Bench-regression gate over `BENCH_micro.json`.
//!
//! ```text
//! cargo run -p tripoll-bench --bin bench_diff -- <baseline.json> <new.json>
//! ```
//!
//! Compares the receive-path allocation proxy (`recv_path.cursor`
//! allocs-per-batch) of a fresh bench run against the committed
//! baseline and exits non-zero on a >10% regression — the CI guard for
//! the zero-copy receive property. Wall-time numbers are deliberately
//! *not* gated (CI machines are too noisy); allocation counts are
//! deterministic.
//!
//! The parser is a minimal scraper for the known
//! `tripoll-bench-micro/v2` schema (the container vendors no JSON
//! crate); a baseline predating the `recv_path` section passes with a
//! notice so the gate can be adopted in the same change that introduces
//! the section.

use std::process::ExitCode;

/// Allowed relative growth of allocs-per-batch before the gate fails.
const MAX_REGRESSION: f64 = 0.10;

/// Returns the text after the first occurrence of `"key"` in `s`.
fn after_key<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    Some(&s[s.find(&needle)? + needle.len()..])
}

/// Reads the number following `"key":` in `s` (first occurrence).
fn number_after(s: &str, key: &str) -> Option<f64> {
    let t = after_key(s, key)?;
    let t = t[t.find(':')? + 1..].trim_start();
    let end = t
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(t.len());
    t[..end].parse().ok()
}

/// Extracts `recv_path.cursor` allocs-per-batch from one report.
fn recv_allocs_per_batch(json: &str) -> Option<f64> {
    let recv = after_key(json, "recv_path")?;
    let batches = number_after(recv, "batches")?;
    let cursor = after_key(recv, "cursor")?;
    let allocs = number_after(cursor, "allocs")?;
    if batches <= 0.0 {
        return None;
    }
    Some(allocs / batches)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, new_path] = &args[..] else {
        eprintln!("usage: bench_diff <baseline.json> <new.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(new_path)) else {
        return ExitCode::FAILURE;
    };

    let Some(new_apb) = recv_allocs_per_batch(&fresh) else {
        eprintln!("bench_diff: {new_path} has no recv_path section — did the micro bench run?");
        return ExitCode::FAILURE;
    };
    let Some(base_apb) = recv_allocs_per_batch(&baseline) else {
        println!(
            "bench_diff: baseline {baseline_path} predates the recv_path section; \
             recording {new_apb:.4} allocs/batch as the new reference"
        );
        return ExitCode::SUCCESS;
    };

    println!("recv-path candidate-list allocs/batch: baseline {base_apb:.4}, new {new_apb:.4}");
    // A zero baseline is the zero-copy contract itself: any allocation
    // at all is a regression, not a percentage.
    let limit = if base_apb == 0.0 {
        0.0
    } else {
        base_apb * (1.0 + MAX_REGRESSION)
    };
    if new_apb > limit {
        eprintln!(
            "bench_diff: FAIL — recv-path allocs/batch regressed beyond {:.0}% ({base_apb:.4} -> {new_apb:.4})",
            MAX_REGRESSION * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_diff: OK (limit {limit:.4})");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "tripoll-bench-micro/v2",
  "recv_path": {
    "batches": 4096,
    "materialized": {"allocs": 4096, "allocs_per_batch": 1.0},
    "cursor": {"allocs": 0, "allocs_per_batch": 0.0000, "ns_per_batch": 687.1}
  }
}"#;

    #[test]
    fn extracts_cursor_allocs() {
        assert_eq!(recv_allocs_per_batch(SAMPLE), Some(0.0));
    }

    #[test]
    fn missing_section_is_none() {
        assert_eq!(recv_allocs_per_batch("{\"schema\": \"v1\"}"), None);
    }

    #[test]
    fn nonzero_allocs_extracted() {
        let s = SAMPLE.replace("\"allocs\": 0,", "\"allocs\": 2048,");
        assert_eq!(recv_allocs_per_batch(&s), Some(0.5));
    }
}
