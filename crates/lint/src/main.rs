//! `tripoll-lint` — repository-specific static checks that `rustc` and
//! `clippy` do not enforce, with zero dependencies beyond std:
//!
//! 1. **unsafe-needs-safety** — every `unsafe` token in code must carry
//!    a justification: a `// SAFETY:` comment on the same line or in
//!    the contiguous comment block above (attributes in between are
//!    skipped), or a `# Safety` doc section for `unsafe fn`
//!    declarations.
//! 2. **ordering-allowlist** — every `Ordering::*` call site must be
//!    accounted for in `lint/orderings.toml`, which names the protocol
//!    each file's orderings belong to (see `docs/CONCURRENCY.md`). The
//!    per-file, per-variant counts must match exactly, so adding,
//!    removing, or re-ordering an atomic site forces a deliberate
//!    allowlist (and protocol documentation) update.
//! 3. **missing-docs-heuristic** — top-level `pub` items in crates
//!    still at `#![warn(missing_docs)]` (where the compiler will not
//!    fail the build) must have a doc comment.
//!
//! The scanner is token-level, not a parser: it splits each line into
//! code and comment text, neutralizing string/char literals and
//! handling nested block comments and raw strings, which is exactly
//! enough precision for the three checks above.
//!
//! Usage: `cargo run -p tripoll-lint -- --workspace` from the
//! repository root. Exits nonzero if any finding is reported.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut orderings_path = PathBuf::from("lint/orderings.toml");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--orderings" => {
                orderings_path =
                    PathBuf::from(it.next().expect("--orderings requires a path argument"));
            }
            "--help" | "-h" => {
                eprintln!("usage: tripoll-lint --workspace | tripoll-lint FILE...");
                return;
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if workspace {
        collect_rs_files(Path::new("crates"), &mut files);
        files.sort();
    }
    if files.is_empty() {
        eprintln!("tripoll-lint: no input files (try --workspace from the repo root)");
        std::process::exit(2);
    }

    let allowlist = match std::fs::read_to_string(&orderings_path) {
        Ok(s) => match parse_allowlist(&s) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("tripoll-lint: {}: {e}", orderings_path.display());
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!(
                "tripoll-lint: cannot read {}: {e}",
                orderings_path.display()
            );
            std::process::exit(2);
        }
    };

    let mut findings: Vec<Finding> = Vec::new();
    let mut seen_ordering_files: Vec<String> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tripoll-lint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        let lines = scan(&text);
        check_unsafe(&rel, &lines, &mut findings);
        let counts = ordering_counts(&lines);
        if !counts.is_empty() {
            seen_ordering_files.push(rel.clone());
        }
        check_orderings(&rel, &counts, &allowlist, &mut findings);
        if workspace && warn_only_crate_root(path).is_some() {
            check_missing_docs(&rel, &lines, &mut findings);
        }
    }
    // Allowlist entries whose file vanished (or no longer has atomics)
    // are stale and must be pruned.
    for entry in &allowlist {
        if !seen_ordering_files.iter().any(|f| f == &entry.path) {
            findings.push(Finding {
                file: entry.path.clone(),
                line: 0,
                rule: "ordering-allowlist",
                msg: "allowlisted file has no Ordering call sites (stale entry?)".into(),
            });
        }
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("tripoll-lint: {} files clean", files.len());
    } else {
        println!("tripoll-lint: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

/// One reported violation.
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// The missing-docs heuristic applies only to crates that declare
/// `#![warn(missing_docs)]` — `deny` crates are compiler-enforced, and
/// crates with no attribute (the offline shims mirroring external
/// APIs) are exempt by policy. Returns the crate's src root if the
/// file belongs to such a crate.
fn warn_only_crate_root(path: &Path) -> Option<PathBuf> {
    let mut dir = path.parent()?;
    loop {
        let lib = dir.join("lib.rs");
        if lib.exists() {
            let text = std::fs::read_to_string(&lib).ok()?;
            if text.contains("#![warn(missing_docs)]") {
                return Some(dir.to_path_buf());
            }
            return None;
        }
        dir = dir.parent()?;
        if dir.as_os_str().is_empty() {
            return None;
        }
    }
}

// ---------------------------------------------------------------------
// Token-level line scanner
// ---------------------------------------------------------------------

/// One source line split into its code and comment halves, with
/// string/char literal contents blanked out of the code half.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

impl Line {
    fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
    fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// Splits `text` into [`Line`]s. String and char literal *contents*
/// are replaced by spaces in the code half (the delimiters remain), so
/// keyword and `Ordering::` searches cannot match inside literals;
/// comment text (line, doc, and nested block comments) lands in the
/// comment half.
fn scan(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(usize),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut lines = Vec::new();
    for raw in text.lines() {
        let b = raw.as_bytes();
        let mut line = Line::default();
        let mut i = 0;
        while i < b.len() {
            match st {
                St::Block(depth) => {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(depth + 1);
                        line.comment.push_str("/*");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        line.comment.push_str("*/");
                        i += 2;
                    } else {
                        line.comment.push(b[i] as char);
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        line.code.push(' ');
                        i += 2; // skip the escaped char (may run past EOL; fine)
                    } else if b[i] == b'"' {
                        line.code.push('"');
                        st = St::Code;
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    let closes = b[i] == b'"'
                        && i + hashes < b.len()
                        && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#');
                    if closes {
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        i += 1 + hashes;
                        st = St::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                St::Code => {
                    let c = b[i];
                    if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        line.comment.push_str(&raw[i..]);
                        i = b.len();
                    } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(1);
                        line.comment.push_str("/*");
                        i += 2;
                    } else if c == b'"' {
                        // Raw-string prefix? Look back over `b?r#*`.
                        let mut j = i;
                        let mut hashes = 0;
                        while j > 0 && b[j - 1] == b'#' {
                            j -= 1;
                            hashes += 1;
                        }
                        if j > 0 && b[j - 1] == b'r' {
                            st = St::RawStr(hashes);
                        } else {
                            st = St::Str;
                        }
                        line.code.push('"');
                        i += 1;
                    } else if c == b'\'' {
                        // Char literal vs lifetime: a quote starts a
                        // char literal iff it closes within a couple of
                        // tokens (`'x'`, `'\n'`, `'\u{1F600}'`).
                        if i + 1 < b.len() && b[i + 1] == b'\\' {
                            // Escaped char literal: consume to closing quote.
                            line.code.push('\'');
                            i += 1;
                            while i < b.len() && b[i] != b'\'' {
                                line.code.push(' ');
                                i += if b[i] == b'\\' { 2 } else { 1 };
                            }
                            if i < b.len() {
                                line.code.push('\'');
                                i += 1;
                            }
                        } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            line.code.push('\''); // lifetime
                            i += 1;
                        }
                    } else {
                        line.code.push(c as char);
                        i += 1;
                    }
                }
            }
        }
        // A `//` comment never continues; an ordinary string literal
        // does not continue across lines in this codebase's style, but
        // raw-string and block-comment states legitimately span lines,
        // so those carry over.
        if st == St::Str {
            st = St::Code;
        }
        lines.push(line);
    }
    lines
}

/// Whether `code` contains `word` with identifier boundaries on both
/// sides.
fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

// ---------------------------------------------------------------------
// Check 1: unsafe-needs-safety
// ---------------------------------------------------------------------

fn check_unsafe(file: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        // `unsafe` in a type position (`unsafe fn(*const (), usize)`
        // as a function-pointer type) carries no obligation of its
        // own; the site that *produces* such a pointer does. Heuristic:
        // `unsafe fn(` with no function name.
        let t = line.code.trim();
        if t.contains("unsafe fn(") && !t.contains("unsafe fn ") {
            continue;
        }
        if line.comment.contains("SAFETY:") {
            continue;
        }
        // Walk upward over attributes to the contiguous comment block.
        let mut k = idx;
        let mut justified = false;
        while k > 0 {
            k -= 1;
            let prev = &lines[k];
            if prev.is_attr_only() {
                continue;
            }
            if prev.is_comment_only() {
                if prev.comment.contains("SAFETY:") || prev.comment.contains("# Safety") {
                    justified = true;
                    break;
                }
                continue;
            }
            break; // blank line or code: the block (if any) ended
        }
        if !justified {
            findings.push(Finding {
                file: file.into(),
                line: idx + 1,
                rule: "unsafe-needs-safety",
                msg: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section)".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Check 2: ordering-allowlist
// ---------------------------------------------------------------------

const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Per-variant `Ordering::*` occurrence counts in code (not comments,
/// not string literals).
fn ordering_counts(lines: &[Line]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for line in lines {
        for v in VARIANTS {
            let needle = format!("Ordering::{v}");
            let mut start = 0;
            while let Some(pos) = line.code[start..].find(&needle) {
                *counts.entry(v).or_insert(0) += 1;
                start += pos + needle.len();
            }
        }
    }
    counts
}

/// One `[[file]]` entry of `lint/orderings.toml`.
#[derive(Debug, Default, Clone)]
struct AllowEntry {
    path: String,
    protocol: String,
    orderings: BTreeMap<String, usize>,
}

/// Hand-rolled parser for the restricted TOML subset the allowlist
/// uses: `[[file]]` array-of-tables with `key = "string"` and
/// `orderings = { Variant = N, ... }` lines.
fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[file]]" {
            entries.push(AllowEntry::default());
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
        let entry = entries
            .last_mut()
            .ok_or_else(|| format!("line {}: key before first [[file]]", n + 1))?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "path" | "protocol" => {
                let s = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: {key} must be a quoted string", n + 1))?;
                if key == "path" {
                    entry.path = s.to_string();
                } else {
                    entry.protocol = s.to_string();
                }
            }
            "orderings" => {
                let inner = value
                    .strip_prefix('{')
                    .and_then(|v| v.strip_suffix('}'))
                    .ok_or_else(|| format!("line {}: orderings must be an inline table", n + 1))?;
                for pair in inner.split(',') {
                    let pair = pair.trim();
                    if pair.is_empty() {
                        continue;
                    }
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad orderings pair `{pair}`", n + 1))?;
                    let k = k.trim().to_string();
                    if !VARIANTS.contains(&k.as_str()) {
                        return Err(format!("line {}: unknown Ordering variant `{k}`", n + 1));
                    }
                    let v: usize = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("line {}: bad count in `{pair}`", n + 1))?;
                    entry.orderings.insert(k, v);
                }
            }
            other => return Err(format!("line {}: unknown key `{other}`", n + 1)),
        }
    }
    for e in &entries {
        if e.path.is_empty() || e.protocol.is_empty() {
            return Err(format!(
                "entry `{}` must set both path and protocol",
                e.path
            ));
        }
    }
    Ok(entries)
}

fn check_orderings(
    file: &str,
    counts: &BTreeMap<&'static str, usize>,
    allowlist: &[AllowEntry],
    findings: &mut Vec<Finding>,
) {
    if counts.is_empty() {
        return;
    }
    let fmt_map = |m: &BTreeMap<String, usize>| {
        m.iter()
            .map(|(k, v)| format!("{k} = {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let got: BTreeMap<String, usize> = counts.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    match allowlist.iter().find(|e| e.path == file) {
        None => {
            findings.push(Finding {
                file: file.into(),
                line: 0,
                rule: "ordering-allowlist",
                msg: format!(
                    "atomic Ordering call sites not in lint/orderings.toml ({{{}}}); add a [[file]] entry naming the protocol",
                    fmt_map(&got)
                ),
            });
        }
        Some(e) if got != e.orderings => {
            findings.push(Finding {
                file: file.into(),
                line: 0,
                rule: "ordering-allowlist",
                msg: format!(
                    "Ordering counts changed: allowlist has {{{}}}, file has {{{}}} — update lint/orderings.toml (protocol: {})",
                    fmt_map(&e.orderings),
                    fmt_map(&got),
                    e.protocol
                ),
            });
        }
        Some(_) => {}
    }
}

// ---------------------------------------------------------------------
// Check 3: missing-docs-heuristic
// ---------------------------------------------------------------------

const PUB_ITEMS: [&str; 10] = [
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub mod ",
    "pub unsafe fn ",
    "pub use ",
];

fn check_missing_docs(file: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        // Top-level items only: nested items live in impls/fns whose
        // reachability a token scanner cannot judge.
        if !line.code.starts_with("pub ") {
            continue;
        }
        let Some(item) = PUB_ITEMS.iter().find(|p| line.code.starts_with(**p)) else {
            continue;
        };
        if *item == "pub use " {
            continue; // re-exports take the source item's docs
        }
        // `pub mod name;` declarations: the module *file* carries the
        // docs as `//!` inner comments, which rustdoc attributes to the
        // module — only inline `pub mod name { ... }` needs docs here.
        if *item == "pub mod " && line.code.trim_end().ends_with(';') {
            continue;
        }
        let mut k = idx;
        let mut documented = false;
        while k > 0 {
            k -= 1;
            let prev = &lines[k];
            if prev.is_attr_only() {
                continue;
            }
            if prev.is_comment_only() {
                documented = prev.comment.trim_start().starts_with("///");
                break;
            }
            break;
        }
        if !documented {
            findings.push(Finding {
                file: file.into(),
                line: idx + 1,
                rule: "missing-docs-heuristic",
                msg: format!(
                    "undocumented public item in a warn-only crate: `{}`",
                    line.code.trim().trim_end_matches('{').trim()
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(src: &str) -> Vec<String> {
        let lines = scan(src);
        let mut f = Vec::new();
        check_unsafe("test.rs", &lines, &mut f);
        f.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        let f = findings_for("fn main() {\n    unsafe { work() };\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("test.rs:2"), "{f:?}");
    }

    #[test]
    fn same_line_safety_is_accepted() {
        let f = findings_for("unsafe { work() }; // SAFETY: trivially fine\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn safety_block_above_attributes_is_accepted() {
        let src = "// SAFETY: the probe guarantees the feature.\n#[cfg(x)]\n#[target_feature(enable = \"avx2\")]\nunsafe fn go() {}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn doc_safety_section_is_accepted() {
        let src =
            "/// Does a thing.\n///\n/// # Safety\n/// Caller must uphold X.\nunsafe fn go() {}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn deleting_the_safety_comment_fails_the_lint() {
        // The negative path the CI gate depends on: same code, comment
        // stripped, must produce a finding.
        let with = "// SAFETY: exclusive access.\nunsafe { *p = 1 };\n";
        let without = "unsafe { *p = 1 };\n";
        assert!(findings_for(with).is_empty());
        assert_eq!(findings_for(without).len(), 1);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let f = findings_for("// this mentions unsafe code\nlet s = \"unsafe { }\";\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_fn_pointer_type_is_exempt() {
        let f = findings_for("struct B { call: unsafe fn(*const (), usize) }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ordering_counts_skip_comments_and_strings() {
        let lines = scan(
            "// Ordering::SeqCst in prose\nlet s = \"Ordering::AcqRel\";\nx.load(Ordering::Acquire);\ny.store(1, Ordering::Release);\n",
        );
        let c = ordering_counts(&lines);
        assert_eq!(c.get("Acquire"), Some(&1));
        assert_eq!(c.get("Release"), Some(&1));
        assert_eq!(c.get("SeqCst"), None);
        assert_eq!(c.get("AcqRel"), None);
    }

    #[test]
    fn allowlist_parses_and_matches() {
        let toml = "# comment\n[[file]]\npath = \"a.rs\"\nprotocol = \"demo\"\norderings = { Acquire = 1, Release = 2 }\n";
        let allow = parse_allowlist(toml).unwrap();
        assert_eq!(allow.len(), 1);
        assert_eq!(allow[0].path, "a.rs");
        assert_eq!(allow[0].orderings["Release"], 2);
    }

    #[test]
    fn unlisted_ordering_site_is_flagged() {
        let allow = parse_allowlist(
            "[[file]]\npath = \"a.rs\"\nprotocol = \"demo\"\norderings = { Acquire = 1 }\n",
        )
        .unwrap();
        // File not in the allowlist at all.
        let mut f = Vec::new();
        let counts = ordering_counts(&scan("x.load(Ordering::Acquire);\n"));
        check_orderings("b.rs", &counts, &allow, &mut f);
        assert_eq!(f.len(), 1);
        // Listed file whose counts drifted (an extra Relaxed snuck in).
        let mut f = Vec::new();
        let counts = ordering_counts(&scan(
            "x.load(Ordering::Acquire);\ny.store(0, Ordering::Relaxed);\n",
        ));
        check_orderings("a.rs", &counts, &allow, &mut f);
        assert_eq!(f.len(), 1);
        // Exact match passes.
        let mut f = Vec::new();
        let counts = ordering_counts(&scan("x.load(Ordering::Acquire);\n"));
        check_orderings("a.rs", &counts, &allow, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn missing_docs_heuristic_flags_undocumented_top_level_items() {
        let mut f = Vec::new();
        check_missing_docs(
            "t.rs",
            &scan("/// Documented.\npub fn a() {}\npub fn b() {}\npub use c::d;\n"),
            &mut f,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].to_string().contains("pub fn b"));
    }

    #[test]
    fn scanner_handles_raw_strings_and_nested_block_comments() {
        let lines = scan(
            "let r = r#\"unsafe Ordering::SeqCst\"#;\n/* outer /* unsafe */ still comment */ let x = 1;\n",
        );
        assert!(!has_word(&lines[0].code, "unsafe"));
        assert!(ordering_counts(&lines).is_empty());
        assert!(lines[1].code.contains("let x = 1;"));
        assert!(lines[1].comment.contains("still comment"));
    }
}
