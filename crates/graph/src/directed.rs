//! Directed-graph support (paper §4, "Distributed Triangle Processing").
//!
//! TriPoll operates on the undirected view of a graph, but the paper
//! notes the approach extends to directed inputs: "our augmented graph
//! would be the original graph with many edges having their
//! directionality reversed and any bidirectional edges having one
//! direction removed. Additionally, each directed edge in the augmented
//! graph may need an additional two bits of storage to give the original
//! directionality (as-seen, reversed, or bidirectional) for use in the
//! user callback."
//!
//! [`from_directed_edges`] performs exactly that preparation: it
//! collapses a directed edge list into the undirected edge set, tagging
//! every surviving edge with its [`Provenance`] — which survey callbacks
//! receive as part of the edge metadata and can use to reason about the
//! original direction.

use tripoll_ygm::wire::{Wire, WireError, WireReader};

use crate::edge_list::EdgeList;

/// Original directionality of an undirected edge derived from a directed
/// input graph. The "two bits of storage" of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The input contained `(u, v)` with `u < v` only.
    Forward,
    /// The input contained `(v, u)` with `u < v` only.
    Reversed,
    /// The input contained both directions.
    Bidirectional,
}

impl Wire for Provenance {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            Provenance::Forward => 0,
            Provenance::Reversed => 1,
            Provenance::Bidirectional => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(Provenance::Forward),
            1 => Ok(Provenance::Reversed),
            2 => Ok(Provenance::Bidirectional),
            _ => Err(WireError::InvalidValue("Provenance discriminant")),
        }
    }
}

impl Provenance {
    /// True if the original graph had an edge `from -> to`, given this
    /// provenance tag on the canonical edge `(min, max)`.
    pub fn has_arc(&self, from: u64, to: u64) -> bool {
        match self {
            Provenance::Bidirectional => true,
            Provenance::Forward => from < to,
            Provenance::Reversed => from > to,
        }
    }
}

/// Converts a *directed* edge list into the undirected, provenance-tagged
/// edge list TriPoll consumes. Self-loops are dropped; duplicate arcs
/// collapse; antiparallel arcs merge into one `Bidirectional` edge whose
/// metadata comes from the `u < v` direction.
pub fn from_directed_edges<EM: Clone>(directed: Vec<(u64, u64, EM)>) -> EdgeList<(Provenance, EM)> {
    let mut arcs: Vec<(u64, u64, EM)> = directed.into_iter().filter(|(u, v, _)| u != v).collect();
    // Canonical order: group antiparallel arcs of the same pair together.
    arcs.sort_by_key(|&(u, v, _)| (u.min(v), u.max(v), u > v));
    arcs.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));

    let mut out: Vec<(u64, u64, (Provenance, EM))> = Vec::with_capacity(arcs.len());
    let mut i = 0;
    while i < arcs.len() {
        let (u, v, em) = arcs[i].clone();
        let (lo, hi) = (u.min(v), u.max(v));
        let has_partner = i + 1 < arcs.len()
            && (
                arcs[i + 1].0.min(arcs[i + 1].1),
                arcs[i + 1].0.max(arcs[i + 1].1),
            ) == (lo, hi);
        let provenance = if has_partner {
            i += 1; // consume the reverse arc; keep the (u < v) metadata
            Provenance::Bidirectional
        } else if u < v {
            Provenance::Forward
        } else {
            Provenance::Reversed
        };
        out.push((lo, hi, (provenance, em)));
        i += 1;
    }
    EdgeList::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reversed_bidirectional() {
        let list = from_directed_edges(vec![
            (1u64, 2u64, "a"), // forward (1 < 2)
            (4, 3, "b"),       // reversed (4 > 3)
            (5, 6, "c"),
            (6, 5, "d"), // together: bidirectional, keeps "c"
        ]);
        let edges = list.as_slice();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], (1, 2, (Provenance::Forward, "a")));
        assert_eq!(edges[1], (3, 4, (Provenance::Reversed, "b")));
        assert_eq!(edges[2], (5, 6, (Provenance::Bidirectional, "c")));
    }

    #[test]
    fn duplicate_arcs_collapse() {
        let list = from_directed_edges(vec![(1u64, 2u64, 9), (1, 2, 8), (1, 2, 7)]);
        assert_eq!(list.len(), 1);
        assert_eq!(list.as_slice()[0].2 .0, Provenance::Forward);
    }

    #[test]
    fn self_loops_dropped() {
        let list = from_directed_edges(vec![(3u64, 3u64, ())]);
        assert!(list.is_empty());
    }

    #[test]
    fn has_arc_semantics() {
        // Canonical edge (2, 5).
        assert!(Provenance::Forward.has_arc(2, 5));
        assert!(!Provenance::Forward.has_arc(5, 2));
        assert!(Provenance::Reversed.has_arc(5, 2));
        assert!(!Provenance::Reversed.has_arc(2, 5));
        assert!(Provenance::Bidirectional.has_arc(2, 5));
        assert!(Provenance::Bidirectional.has_arc(5, 2));
    }

    #[test]
    fn provenance_is_wire() {
        use tripoll_ygm::wire::{from_bytes, to_bytes};
        for p in [
            Provenance::Forward,
            Provenance::Reversed,
            Provenance::Bidirectional,
        ] {
            let bytes = to_bytes(&p);
            assert_eq!(from_bytes::<Provenance>(&bytes).unwrap(), p);
        }
        assert!(from_bytes::<Provenance>(&[9]).is_err());
    }

    #[test]
    fn mixed_multigraph() {
        // 10 -> 20 twice, 20 -> 10 once: bidirectional; 30 -> 7 once:
        // reversed.
        let list = from_directed_edges(vec![
            (10u64, 20u64, 1),
            (10, 20, 2),
            (20, 10, 3),
            (30, 7, 4),
        ]);
        let edges = list.as_slice();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (7, 30, (Provenance::Reversed, 4)));
        assert_eq!(edges[1].2 .0, Provenance::Bidirectional);
    }
}
