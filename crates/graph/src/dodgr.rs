//! Distributed degree-ordered directed graph (DODGr) with metadata.
//!
//! This is TriPoll's graph storage (paper §4.2): vertices are assigned to
//! ranks by a [`Partition`]; the owning rank stores, for each vertex `u`,
//! its metadata `meta(u)` and the metadata-augmented out-adjacency
//!
//! ```text
//! Adjm+(u) = { (v, meta(u,v), meta(v)) | v ∈ Adj+(u) }
//! ```
//!
//! where `Adj+(u)` keeps only neighbors *larger* than `u` in the degree
//! order `<+` (§3), sorted ascending by that order. Each entry also
//! carries the target's undirected degree (which defines its `<+` key)
//! and its DODGr out-degree `d+(v)` — the "small constant amount of
//! additional memory per edge" (§4.4) that lets Push-Pull decide whether
//! pulling `Adjm+(v)` is worthwhile.
//!
//! Construction ([`build_dist_graph`]) is a three-round asynchronous
//! pipeline over the communicator:
//!
//! 1. **Scatter** — every input edge `(u,v)` is sent to `Rank(u)` as
//!    `(u,v)` and to `Rank(v)` as `(v,u)` (symmetrization); owners sort
//!    and deduplicate, which yields the undirected degree `d(u)`.
//! 2. **Degree exchange** — each owner tells the owner of every neighbor
//!    the degree of its local vertices, establishing the `<+` order.
//! 3. **Out-degree exchange** — after orienting edges locally, `d+(v)` is
//!    distributed the same way.
//!
//! Vertex metadata is produced by a deterministic function of the vertex
//! id supplied by the caller (generators and file loaders close over
//! their attribute tables), so `meta(v)` can be materialized on any rank
//! without a fourth exchange; it is still *stored* per edge, reproducing
//! the paper's `O(|E|)` vertex-metadata storage trade-off.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use tripoll_ygm::hash::{FastMap, FastSet};
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::order::OrderKey;
use crate::partition::Partition;

/// One out-edge of the DODGr, with everything a survey needs colocated.
#[derive(Debug, Clone)]
pub struct AdjEntry<VM, EM> {
    /// Target vertex id (`v`, with `u <+ v`).
    pub v: u64,
    /// Target's position in the `<+` order — the merge-path sort key.
    pub key: OrderKey,
    /// Target's DODGr out-degree `d+(v)` (Push-Pull decisions).
    pub dplus_v: u64,
    /// Edge metadata `meta(u, v)`.
    pub em: EM,
    /// Target vertex metadata `meta(v)` (the paper's O(|E|) storage).
    pub vm: VM,
}

/// A vertex owned by this rank, with its augmented out-adjacency.
#[derive(Debug, Clone)]
pub struct LocalVertex<VM, EM> {
    /// Vertex id.
    pub id: u64,
    /// Undirected degree `d(u)`.
    pub degree: u64,
    /// This vertex's position in the `<+` order.
    pub key: OrderKey,
    /// Vertex metadata `meta(u)`.
    pub meta: VM,
    /// `Adjm+(u)`, sorted ascending by `AdjEntry::key`.
    pub adj: Vec<AdjEntry<VM, EM>>,
}

impl<VM, EM> LocalVertex<VM, EM> {
    /// DODGr out-degree `d+(u)`.
    #[inline]
    pub fn dplus(&self) -> u64 {
        self.adj.len() as u64
    }
}

/// All vertices owned by one rank.
#[derive(Debug)]
pub struct LocalShard<VM, EM> {
    vertices: Vec<LocalVertex<VM, EM>>,
    index: FastMap<u64, u32>,
}

impl<VM, EM> LocalShard<VM, EM> {
    /// Assembles a shard from a set of locally-owned vertices (any
    /// order); vertices are sorted by id and indexed. This is how
    /// resident-graph re-sharding and snapshot loading build shards
    /// without a communication round.
    pub fn from_vertices(mut vertices: Vec<LocalVertex<VM, EM>>) -> Self {
        vertices.sort_by_key(|v| v.id);
        let index = vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (v.id, i as u32))
            .collect();
        LocalShard { vertices, index }
    }

    /// Vertices owned by this rank, sorted by id.
    #[inline]
    pub fn vertices(&self) -> &[LocalVertex<VM, EM>] {
        &self.vertices
    }

    /// Looks up a locally-owned vertex by id.
    #[inline]
    pub fn get(&self, id: u64) -> Option<&LocalVertex<VM, EM>> {
        self.index.get(&id).map(|&i| &self.vertices[i as usize])
    }

    /// Number of vertices owned by this rank.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when this rank owns no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Global graph statistics, aggregated collectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Vertices with at least one incident edge.
    pub vertices: u64,
    /// Directed edges after symmetrization (Table 1's `|E|` convention).
    pub directed_edges: u64,
    /// Edges of the DODGr (= undirected edges).
    pub dodgr_edges: u64,
    /// Maximum undirected degree (`d_max`).
    pub max_degree: u64,
    /// Maximum DODGr out-degree (`d_max+`).
    pub max_out_degree: u64,
    /// `|W+|`: wedge checks the DODGr generates, `Σ_p C(d+(p), 2)` —
    /// the work measure of the weak-scaling study (§5.5).
    pub wedges: u64,
}

/// A distributed DODGr handle: this rank's shard plus the partition map.
///
/// Cheap to clone (the shard is reference-counted); message handlers
/// capture clones. The shard sits behind an [`Arc`] so a resident
/// graph can share the same immutable storage across many query
/// worlds without copying.
pub struct DistGraph<VM, EM> {
    shard: Arc<LocalShard<VM, EM>>,
    partition: Partition,
    nranks: usize,
}

impl<VM, EM> Clone for DistGraph<VM, EM> {
    fn clone(&self) -> Self {
        DistGraph {
            shard: Arc::clone(&self.shard),
            partition: self.partition,
            nranks: self.nranks,
        }
    }
}

impl<VM, EM> DistGraph<VM, EM> {
    /// Wraps pre-built shared storage as a rank-local graph handle —
    /// the resident-graph path, where the shard was built once and is
    /// now being attached to a fresh per-query world.
    pub fn from_parts(shard: Arc<LocalShard<VM, EM>>, partition: Partition, nranks: usize) -> Self {
        DistGraph {
            shard,
            partition,
            nranks,
        }
    }

    /// Rank owning vertex `v` — the paper's `Rank(v)`.
    #[inline]
    pub fn owner(&self, v: u64) -> usize {
        self.partition.owner(v, self.nranks)
    }

    /// Number of ranks the graph is partitioned over.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// This rank's shard.
    #[inline]
    pub fn shard(&self) -> &Arc<LocalShard<VM, EM>> {
        &self.shard
    }

    /// The partitioning in use.
    #[inline]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Statistics of this rank's shard only.
    pub fn local_stats(&self) -> GraphStats {
        let mut s = GraphStats {
            vertices: self.shard.len() as u64,
            ..Default::default()
        };
        for v in self.shard.vertices() {
            s.directed_edges += v.degree;
            s.dodgr_edges += v.dplus();
            s.max_degree = s.max_degree.max(v.degree);
            s.max_out_degree = s.max_out_degree.max(v.dplus());
            let d = v.dplus();
            s.wedges += d * d.saturating_sub(1) / 2;
        }
        s
    }

    /// Global statistics. Collective.
    pub fn global_stats(&self, comm: &Comm) -> GraphStats {
        let l = self.local_stats();
        GraphStats {
            vertices: comm.all_reduce_sum(l.vertices),
            directed_edges: comm.all_reduce_sum(l.directed_edges),
            dodgr_edges: comm.all_reduce_sum(l.dodgr_edges),
            max_degree: comm.all_reduce_max(l.max_degree),
            max_out_degree: comm.all_reduce_max(l.max_out_degree),
            wedges: comm.all_reduce_sum(l.wedges),
        }
    }
}

/// Degree/out-degree exchange batch size: small enough to interleave,
/// large enough to amortize the per-record varint overhead.
const EXCHANGE_CHUNK: usize = 512;

/// Builds the distributed DODGr from this rank's share of the input edge
/// records. Collective: every rank calls with its own `local_edges`.
///
/// * Input edges are undirected; direction, duplicates and self-loops are
///   normalized away during the build.
/// * `vm_fn` must be deterministic and identical on every rank.
pub fn build_dist_graph<VM, EM, F>(
    comm: &Comm,
    local_edges: Vec<(u64, u64, EM)>,
    vm_fn: F,
    partition: Partition,
) -> DistGraph<VM, EM>
where
    VM: Clone + 'static,
    EM: Wire + Clone + 'static,
    F: Fn(u64) -> VM,
{
    let nranks = comm.nranks();

    #[derive(Default)]
    struct BuildState<EM> {
        /// Undirected adjacency of locally-owned vertices (with edge meta).
        adj: FastMap<u64, Vec<(u64, EM)>>,
        /// Undirected degrees of every vertex referenced by a local edge.
        deg: FastMap<u64, u64>,
        /// DODGr out-degrees of every vertex referenced by a local edge.
        dplus: FastMap<u64, u64>,
    }

    let st: Rc<RefCell<BuildState<EM>>> = Rc::new(RefCell::new(BuildState {
        adj: FastMap::default(),
        deg: FastMap::default(),
        dplus: FastMap::default(),
    }));

    let st_edge = st.clone();
    let h_edge = comm.register::<(u64, u64, EM), _>(move |_c, (u, v, em)| {
        st_edge.borrow_mut().adj.entry(u).or_default().push((v, em));
    });
    let st_deg = st.clone();
    let h_deg = comm.register::<Vec<(u64, u64)>, _>(move |_c, pairs| {
        let mut s = st_deg.borrow_mut();
        for (v, d) in pairs {
            s.deg.insert(v, d);
        }
    });
    let st_dplus = st.clone();
    let h_dplus = comm.register::<Vec<(u64, u64)>, _>(move |_c, pairs| {
        let mut s = st_dplus.borrow_mut();
        for (v, d) in pairs {
            s.dplus.insert(v, d);
        }
    });

    // Round 1: scatter both directions of every edge to the endpoint
    // owners (symmetrization on the fly).
    for (u, v, em) in local_edges {
        if u == v {
            continue; // self-loops never participate in triangles
        }
        comm.send(partition.owner(u, nranks), &h_edge, &(u, v, em.clone()));
        comm.send(partition.owner(v, nranks), &h_edge, &(v, u, em));
    }
    comm.barrier();

    // Local: canonicalize each adjacency list (sort by target, collapse
    // parallel edges). Degrees are now final.
    let mut adj = std::mem::take(&mut st.borrow_mut().adj);
    for list in adj.values_mut() {
        list.sort_by_key(|(v, _)| *v);
        list.dedup_by(|a, b| a.0 == b.0);
    }

    // Round 2: each owner announces d(v) of its local vertices to the
    // owner of every neighbor (once per destination rank, batched).
    exchange_per_neighbor_rank(comm, &adj, partition, nranks, &h_deg, |_, list| {
        list.len() as u64
    });
    comm.barrier();
    let deg = std::mem::take(&mut st.borrow_mut().deg);

    // Local: orient edges by `<+`, producing d+(u) for local vertices.
    let mut dplus_local: FastMap<u64, u64> = FastMap::default();
    for (&u, list) in &adj {
        let ku = OrderKey::new(u, list.len() as u64);
        let dplus = list
            .iter()
            .filter(|(v, _)| ku < OrderKey::new(*v, deg[v]))
            .count() as u64;
        dplus_local.insert(u, dplus);
    }

    // Round 3: announce d+(v) along the same undirected neighborhoods.
    exchange_per_neighbor_rank(comm, &adj, partition, nranks, &h_dplus, |u, _| {
        dplus_local[&u]
    });
    comm.barrier();
    let dplus = std::mem::take(&mut st.borrow_mut().dplus);

    // Assemble the shard: keep out-edges only, sorted by `<+`, augmented
    // with edge + target metadata.
    let vertices: Vec<LocalVertex<VM, EM>> = adj
        .into_iter()
        .map(|(u, list)| {
            let degree = list.len() as u64;
            let key = OrderKey::new(u, degree);
            let mut out: Vec<AdjEntry<VM, EM>> = list
                .into_iter()
                .filter_map(|(v, em)| {
                    let kv = OrderKey::new(v, deg[&v]);
                    (key < kv).then(|| AdjEntry {
                        v,
                        key: kv,
                        dplus_v: dplus[&v],
                        em,
                        vm: vm_fn(v),
                    })
                })
                .collect();
            out.sort_by_key(|e| e.key);
            LocalVertex {
                id: u,
                degree,
                key,
                meta: vm_fn(u),
                adj: out,
            }
        })
        .collect();

    DistGraph {
        shard: Arc::new(LocalShard::from_vertices(vertices)),
        partition,
        nranks,
    }
}

/// For each local vertex `u`, sends `(u, value(u))` to the owner of every
/// neighbor of `u`, visiting each destination rank at most once per `u`.
fn exchange_per_neighbor_rank<EM>(
    comm: &Comm,
    adj: &FastMap<u64, Vec<(u64, EM)>>,
    partition: Partition,
    nranks: usize,
    handler: &tripoll_ygm::Handler<Vec<(u64, u64)>>,
    value: impl Fn(u64, &Vec<(u64, EM)>) -> u64,
) {
    let mut batches: Vec<Vec<(u64, u64)>> = (0..nranks).map(|_| Vec::new()).collect();
    let mut dests: FastSet<usize> = FastSet::default();
    for (&u, list) in adj {
        let val = value(u, list);
        dests.clear();
        for (v, _) in list {
            dests.insert(partition.owner(*v, nranks));
        }
        for &dst in &dests {
            batches[dst].push((u, val));
            if batches[dst].len() >= EXCHANGE_CHUNK {
                comm.send(dst, handler, &batches[dst]);
                batches[dst].clear();
            }
        }
    }
    for (dst, batch) in batches.into_iter().enumerate() {
        if !batch.is_empty() {
            comm.send(dst, handler, &batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use tripoll_ygm::World;

    /// Serial reference DODGr: (u -> sorted out-neighbors) from an edge set.
    fn serial_dodgr(edges: &[(u64, u64)]) -> FastMap<u64, Vec<u64>> {
        let canon = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>())
            .canonicalize();
        let mut deg: FastMap<u64, u64> = FastMap::default();
        for (u, v, _) in canon.as_slice() {
            *deg.entry(*u).or_insert(0) += 1;
            *deg.entry(*v).or_insert(0) += 1;
        }
        let mut out: FastMap<u64, Vec<u64>> = FastMap::default();
        for &v in deg.keys() {
            out.entry(v).or_default();
        }
        for (u, v, _) in canon.as_slice() {
            let (u, v) = (*u, *v);
            if OrderKey::new(u, deg[&u]) < OrderKey::new(v, deg[&v]) {
                out.entry(u).or_default().push(v);
            } else {
                out.entry(v).or_default().push(u);
            }
        }
        for (v, list) in out.iter_mut() {
            list.sort_by_key(|t| OrderKey::new(*t, deg[t]));
            let _ = v;
        }
        out
    }

    fn check_against_serial(edges: &[(u64, u64)], nranks: usize, partition: Partition) {
        let expected = serial_dodgr(edges);
        let edges_meta: Vec<(u64, u64, u32)> = edges
            .iter()
            .map(|&(u, v)| (u, v, (u * 1000 + v) as u32))
            .collect();
        let list = EdgeList::from_vec(edges_meta);

        let shards = World::new(nranks).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |v| v * 7, partition);
            // Export (id, degree, out-neighbors, meta, target metas).
            g.shard()
                .vertices()
                .iter()
                .map(|lv| {
                    (
                        lv.id,
                        lv.degree,
                        lv.adj.iter().map(|e| e.v).collect::<Vec<_>>(),
                        lv.meta,
                        lv.adj.iter().map(|e| e.vm).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        });

        let mut seen: FastMap<u64, Vec<u64>> = FastMap::default();
        for (rank, shard) in shards.into_iter().enumerate() {
            for (id, _degree, out, meta, target_metas) in shard {
                assert_eq!(
                    partition.owner(id, nranks),
                    rank,
                    "vertex {id} on wrong rank"
                );
                assert_eq!(meta, id * 7, "vertex metadata");
                for (t, tm) in out.iter().zip(&target_metas) {
                    assert_eq!(*tm, t * 7, "target metadata for {t}");
                }
                assert!(seen.insert(id, out).is_none(), "vertex {id} duplicated");
            }
        }
        assert_eq!(seen.len(), expected.len(), "vertex count");
        for (v, exp_out) in &expected {
            assert_eq!(&seen[v], exp_out, "out-adjacency of {v}");
        }
    }

    #[test]
    fn triangle_on_various_rank_counts() {
        for nranks in [1, 2, 3, 4] {
            check_against_serial(&[(0, 1), (1, 2), (2, 0)], nranks, Partition::Hashed);
        }
    }

    #[test]
    fn cyclic_partition() {
        check_against_serial(
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],
            3,
            Partition::Cyclic,
        );
    }

    #[test]
    fn duplicates_and_loops_collapse() {
        check_against_serial(
            &[(0, 1), (1, 0), (0, 1), (1, 1), (2, 2), (1, 2)],
            2,
            Partition::Hashed,
        );
    }

    #[test]
    fn star_graph_hub_has_no_out_edges() {
        // Star: hub 0 has the max degree, so every edge points *at* it.
        let edges: Vec<(u64, u64)> = (1..=6).map(|v| (0u64, v)).collect();
        let out = World::new(3).run(|comm| {
            let list =
                EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let stats = g.global_stats(comm);
            let hub_dplus = g.shard().get(0).map(|v| v.dplus());
            (stats, hub_dplus)
        });
        let (stats, _) = out[0];
        assert_eq!(stats.vertices, 7);
        assert_eq!(stats.directed_edges, 12);
        assert_eq!(stats.dodgr_edges, 6);
        assert_eq!(stats.max_degree, 6);
        // DODGr sends all 6 edges into the hub; leaves have d+ = 1.
        assert_eq!(stats.max_out_degree, 1);
        assert_eq!(stats.wedges, 0);
        for (stats_r, hub) in out {
            assert_eq!(stats_r, stats, "stats agree on all ranks");
            if let Some(d) = hub {
                assert_eq!(d, 0, "hub has no out-edges");
            }
        }
    }

    #[test]
    fn dplus_annotations_match_owners() {
        // Every AdjEntry.dplus_v must equal the actual out-degree of the
        // target vertex, wherever it lives.
        let edges = [
            (0u64, 1u64),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ];
        let out = World::new(4).run(|comm| {
            let list =
                EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            // Gather true out-degrees.
            let mine: Vec<(u64, u64)> = g
                .shard()
                .vertices()
                .iter()
                .map(|v| (v.id, v.dplus()))
                .collect();
            let all: Vec<(u64, u64)> = comm.all_gather(&mine).into_iter().flatten().collect();
            let truth: FastMap<u64, u64> = all.into_iter().collect();
            for lv in g.shard().vertices() {
                for e in &lv.adj {
                    assert_eq!(e.dplus_v, truth[&e.v], "dplus of {} at {}", e.v, lv.id);
                }
            }
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn adjacency_sorted_by_order_key() {
        let edges: Vec<(u64, u64)> = (0..30u64)
            .flat_map(|i| [(i, (i + 7) % 30), (i, (i + 13) % 30)])
            .collect();
        World::new(3).run(|comm| {
            let list =
                EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            for lv in g.shard().vertices() {
                assert!(lv.adj.windows(2).all(|w| w[0].key < w[1].key));
                for e in &lv.adj {
                    assert!(lv.key < e.key, "out-edge must increase in <+");
                }
            }
        });
    }

    #[test]
    fn edge_metadata_preserved() {
        let out = World::new(2).run(|comm| {
            let edges = [(1u64, 2u64, "a".to_string()), (2, 3, "b".to_string())];
            let local: Vec<_> = edges
                .iter()
                .skip(comm.rank())
                .step_by(comm.nranks())
                .cloned()
                .collect();
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let mut found: Vec<(u64, u64, String)> = Vec::new();
            for lv in g.shard().vertices() {
                for e in &lv.adj {
                    found.push((lv.id, e.v, e.em.clone()));
                }
            }
            found
        });
        let mut all: Vec<(u64, u64, String)> = out.into_iter().flatten().collect();
        all.sort();
        // One DODGr edge per undirected edge, metadata intact (direction
        // depends on the degree order; normalize endpoints).
        let normalized: Vec<(u64, u64, String)> = all
            .into_iter()
            .map(|(u, v, m)| (u.min(v), u.max(v), m))
            .collect();
        assert_eq!(
            normalized,
            vec![(1, 2, "a".to_string()), (2, 3, "b".to_string())]
        );
    }

    #[test]
    fn wedge_count_matches_formula() {
        // Complete graph K5: every vertex pair adjacent. |W+| must equal
        // sum over vertices of C(d+, 2) and the DODGr of K_n has
        // out-degrees 0..n-1 in some order → |W+| = Σ C(k,2) = C(n,3) · 3 / ...
        // For K5: out-degrees are {4,3,2,1,0} ⇒ Σ C(k,2) = 6+3+1+0+0 = 10.
        let mut edges = Vec::new();
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let out = World::new(2).run(|comm| {
            let list =
                EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            g.global_stats(comm).wedges
        });
        assert_eq!(out, vec![10, 10]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn distributed_matches_serial(
                edges in proptest::collection::vec((0u64..40, 0u64..40), 1..120),
                nranks in 1usize..5,
            ) {
                check_against_serial(&edges, nranks, Partition::Hashed);
            }
        }
    }
}
