//! Vertex-to-rank partitioning (paper §4.2).
//!
//! TriPoll "uses random or cyclic partitionings of vertices across MPI
//! ranks and does not attempt more sophisticated partitionings": the
//! DODGr transformation already tames the hub vertices that would
//! otherwise make cheap partitionings unpalatable.

use tripoll_ygm::hash::hash64;

/// How vertices map to owning ranks, `Rank(v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// `Rank(v) = v mod nranks` — cyclic striping of vertex ids.
    Cyclic,
    /// `Rank(v) = hash64(v) mod nranks` — the "random" partitioning.
    #[default]
    Hashed,
}

impl Partition {
    /// The rank that owns vertex `v`'s adjacency, metadata and computation.
    #[inline]
    pub fn owner(&self, v: u64, nranks: usize) -> usize {
        debug_assert!(nranks > 0);
        match self {
            Partition::Cyclic => (v % nranks as u64) as usize,
            Partition::Hashed => (hash64(v) % nranks as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_is_modulo() {
        let p = Partition::Cyclic;
        assert_eq!(p.owner(0, 4), 0);
        assert_eq!(p.owner(5, 4), 1);
        assert_eq!(p.owner(7, 4), 3);
    }

    #[test]
    fn hashed_is_stable_and_in_range() {
        let p = Partition::Hashed;
        for v in 0..1000u64 {
            let o = p.owner(v, 6);
            assert!(o < 6);
            assert_eq!(o, p.owner(v, 6));
        }
    }

    #[test]
    fn hashed_spreads_sequential_ids() {
        let p = Partition::Hashed;
        let nranks = 5;
        let mut counts = vec![0usize; nranks];
        for v in 0..5000u64 {
            counts[p.owner(v, nranks)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(Partition::Cyclic.owner(v, 1), 0);
            assert_eq!(Partition::Hashed.owner(v, 1), 0);
        }
    }
}
