//! Incremental edge-batch ingestion into DODGr storage.
//!
//! [`apply_edge_batch`] appends a batch of undirected edges to an
//! existing global vertex list (the resident tier's storage shape: all
//! ranks' [`LocalVertex`] records in one id-sorted vector) and leaves
//! the storage **bit-identical** to a from-scratch
//! [`crate::build_dist_graph`] over the concatenated input. The update
//! is local to the *affected record set* — degree order is re-derived
//! only for vertices the batch touches — rather than a rebuild:
//!
//! 1. The batch is canonicalized exactly like the builder's scatter
//!    round: self-loops dropped, endpoints normalized, within-batch
//!    duplicates collapse keeping the first occurrence, and edges
//!    already present in storage are dropped (so the *earlier* edge's
//!    metadata survives, matching the stable-sort dedup of the
//!    builder).
//! 2. Undirected degrees only ever grow, so `<+` keys of touched
//!    vertices only grow: orientation flips can only move edges *out*
//!    of a touched vertex's out-list, never into one from an untouched
//!    vertex. The affected records are the touched vertices, flip
//!    receivers, new-edge sources, and — via a persistent
//!    [`ReverseIndex`] — every apex whose stored entries need their
//!    `key`/`dplus_v` annotations patched.
//! 3. Each affected record is rebuilt from its old entries (patched,
//!    minus flip-outs, plus flip-ins and new edges) and re-sorted by
//!    key — the same canonical `sort_by_key` the builder runs, so entry
//!    order, keys, degrees, and `d+` annotations all land exactly where
//!    a from-scratch build would put them.
//!
//! Alongside the storage update, the function derives a [`BatchDelta`]:
//! for every apex vertex, which out-entries are *new* and which
//! entry-index pairs form a wedge *closed* by a new edge between two
//! old entries. A delta survey generates exactly the wedges with at
//! least one new edge from this plan (see `tripoll-core`'s delta
//! engine), which is what makes `full(G ∪ B) == full(G) + delta(G, B)`
//! hold exactly.
//!
//! Vertex metadata is immutable under ingest: existing vertices keep
//! their stored `meta`, and the admitting variant
//! ([`apply_edge_batch_with`]) consults `vm_fn` only for
//! previously-unknown vertices. For the bit-identity contract the
//! caller's `vm_fn` must be the same deterministic function of the
//! vertex id that built the original storage (a *fixed* function — a
//! "current degree" table would change under ingest and break both
//! identities by design).

use tripoll_ygm::hash::{FastMap, FastSet};

use crate::dodgr::{AdjEntry, LocalVertex};
use crate::error::GraphError;
use crate::order::OrderKey;

/// Reverse adjacency over DODGr storage: for each vertex `v`, the
/// sorted apex ids `u` whose `Adjm+(u)` contains an entry for `v`.
///
/// Incremental ingestion needs this to find, without a full scan, every
/// record whose stored `key`/`dplus_v` annotations a batch invalidates,
/// and every apex that can close a wedge over a new edge. Build it once
/// ([`ReverseIndex::build`]); [`apply_edge_batch`] keeps it consistent
/// across batches.
#[derive(Debug, Default, Clone)]
pub struct ReverseIndex {
    rev: FastMap<u64, Vec<u64>>,
}

impl ReverseIndex {
    /// Builds the reverse index of a global vertex list (one full scan).
    pub fn build<VM, EM>(vertices: &[LocalVertex<VM, EM>]) -> Self {
        let mut rev: FastMap<u64, Vec<u64>> = FastMap::default();
        for lv in vertices {
            for e in &lv.adj {
                rev.entry(e.v).or_default().push(lv.id);
            }
        }
        for list in rev.values_mut() {
            list.sort_unstable();
        }
        ReverseIndex { rev }
    }

    /// Apexes whose out-adjacency stores an entry for `v`, sorted.
    #[inline]
    pub fn apexes(&self, v: u64) -> &[u64] {
        self.rev.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    fn insert(&mut self, target: u64, apex: u64) {
        let list = self.rev.entry(target).or_default();
        if let Err(pos) = list.binary_search(&apex) {
            list.insert(pos, apex);
        }
    }

    fn remove(&mut self, target: u64, apex: u64) {
        if let Some(list) = self.rev.get_mut(&target) {
            if let Ok(pos) = list.binary_search(&apex) {
                list.remove(pos);
            }
        }
    }
}

/// The delta-wedge plan for one apex vertex `p`, in terms of indices
/// into `p`'s **post-ingest** `Adjm+(p)`.
#[derive(Debug, Clone, Default)]
pub struct ApexDelta {
    /// Sorted indices of entries created by this batch (new edges
    /// stored at `p`). A wedge with either endpoint at one of these
    /// indices involves a new edge.
    pub new_idx: Vec<u32>,
    /// Sorted `(i, j)` pairs (`i < j`, both entries **old**) whose
    /// targets are joined by a new edge of this batch — wedges the
    /// batch *closed* without touching either of `p`'s own entries.
    pub closing: Vec<(u32, u32)>,
}

/// Everything a delta survey needs to generate exactly the wedges that
/// involve at least one edge of one ingested batch, keyed by apex.
///
/// Index-based and therefore only valid against the storage state this
/// batch produced; the resident tier guards that with an epoch check.
#[derive(Debug, Clone, Default)]
pub struct BatchDelta {
    /// Canonicalized `(min, max)` endpoint pairs of the genuinely-new
    /// edges (self-loops, within-batch duplicates, and edges already
    /// present in storage are dropped).
    pub new_edges: Vec<(u64, u64)>,
    /// Vertex ids the batch introduced (no prior record).
    pub new_vertices: Vec<u64>,
    /// Per-apex delta-wedge plan; apexes with no new entries and no
    /// closing pairs are absent.
    pub apexes: FastMap<u64, ApexDelta>,
}

impl BatchDelta {
    /// True when the batch contributed nothing (all edges were
    /// duplicates or self-loops): no storage change, no delta wedges.
    pub fn is_empty(&self) -> bool {
        self.new_edges.is_empty()
    }
}

/// How unknown endpoint vertices are handled during ingest.
enum Admit<'a, VM> {
    /// Reject the whole batch with [`GraphError::UnknownVertex`]
    /// (before any mutation) if any non-self-loop edge references a
    /// vertex with no resident record.
    Strict,
    /// Create records for unknown vertices, with metadata from the
    /// deterministic function.
    With(&'a dyn Fn(u64) -> VM),
}

/// Appends an edge batch to resident DODGr storage, **strict** on
/// vertices: every endpoint must already have a record, otherwise the
/// batch is rejected with [`GraphError::UnknownVertex`] and neither
/// `vertices` nor `rev` is modified. See the module docs for the exact
/// canonicalization and bit-identity contract.
///
/// `rev` must be consistent with `vertices` (built by
/// [`ReverseIndex::build`] or maintained by previous calls); it is
/// updated in place alongside the storage.
pub fn apply_edge_batch<VM, EM>(
    vertices: &mut Vec<LocalVertex<VM, EM>>,
    rev: &mut ReverseIndex,
    batch: &[(u64, u64, EM)],
) -> Result<BatchDelta, GraphError>
where
    VM: Clone,
    EM: Clone,
{
    apply(vertices, rev, batch, Admit::<VM>::Strict)
}

/// [`apply_edge_batch`] that admits previously-unknown vertices,
/// creating their records with metadata from `vm_fn`. `vm_fn` must be
/// the same deterministic function used to build the original storage;
/// it is consulted **only** for new vertices (existing metadata is
/// immutable under ingest).
pub fn apply_edge_batch_with<VM, EM, F>(
    vertices: &mut Vec<LocalVertex<VM, EM>>,
    rev: &mut ReverseIndex,
    batch: &[(u64, u64, EM)],
    vm_fn: F,
) -> Result<BatchDelta, GraphError>
where
    VM: Clone,
    EM: Clone,
    F: Fn(u64) -> VM,
{
    apply(vertices, rev, batch, Admit::With(&vm_fn))
}

/// Index of `id` in the id-sorted global vertex list.
#[inline]
fn idx_of<VM, EM>(vertices: &[LocalVertex<VM, EM>], id: u64) -> Option<usize> {
    vertices.binary_search_by_key(&id, |v| v.id).ok()
}

/// Whether the undirected edge `{a, b}` is already stored (at whichever
/// endpoint currently has the smaller `<+` key).
fn edge_present<VM, EM>(vertices: &[LocalVertex<VM, EM>], a: u64, b: u64) -> bool {
    let (Some(ia), Some(ib)) = (idx_of(vertices, a), idx_of(vertices, b)) else {
        return false;
    };
    let (src, target_key) = if vertices[ia].key < vertices[ib].key {
        (&vertices[ia], vertices[ib].key)
    } else {
        (&vertices[ib], vertices[ia].key)
    };
    src.adj.binary_search_by(|e| e.key.cmp(&target_key)).is_ok()
}

fn apply<VM, EM>(
    vertices: &mut Vec<LocalVertex<VM, EM>>,
    rev: &mut ReverseIndex,
    batch: &[(u64, u64, EM)],
    admit: Admit<'_, VM>,
) -> Result<BatchDelta, GraphError>
where
    VM: Clone,
    EM: Clone,
{
    // ---- 1. Canonicalize + validate, before any mutation. ----------
    // Self-loops never participate in triangles and are dropped before
    // the unknown-vertex check (the builder never sees them either).
    let mut new_edges: Vec<(u64, u64, EM)> = Vec::new();
    let mut seen: FastSet<(u64, u64)> = FastSet::default();
    for (a, b, em) in batch {
        let (a, b) = (*a.min(b), *a.max(b));
        if a == b {
            continue;
        }
        if matches!(admit, Admit::Strict) {
            for v in [a, b] {
                if idx_of(vertices, v).is_none() {
                    return Err(GraphError::UnknownVertex { vertex: v });
                }
            }
        }
        if !seen.insert((a, b)) {
            continue; // within-batch duplicate: first occurrence wins
        }
        if edge_present(vertices, a, b) {
            continue; // already stored: the earlier edge's metadata wins
        }
        new_edges.push((a, b, em.clone()));
    }
    if new_edges.is_empty() {
        return Ok(BatchDelta::default());
    }

    // ---- 2. New degrees and keys of touched vertices. --------------
    // Degrees only grow, so every touched key strictly grows.
    let mut inc: FastMap<u64, u64> = FastMap::default();
    for (a, b, _) in &new_edges {
        *inc.entry(*a).or_insert(0) += 1;
        *inc.entry(*b).or_insert(0) += 1;
    }
    let mut touched: Vec<u64> = inc.keys().copied().collect();
    touched.sort_unstable();
    // v -> (new degree, new key); only touched vertices appear.
    let mut newkey: FastMap<u64, (u64, OrderKey)> = FastMap::default();
    let mut brand_new: Vec<u64> = Vec::new();
    for &t in &touched {
        let old_deg = match idx_of(vertices, t) {
            Some(i) => vertices[i].degree,
            None => {
                brand_new.push(t);
                0
            }
        };
        let d = old_deg + inc[&t];
        newkey.insert(t, (d, OrderKey::new(t, d)));
    }
    let key_after = |vs: &[LocalVertex<VM, EM>], v: u64| -> OrderKey {
        match newkey.get(&v) {
            Some(&(_, k)) => k,
            None => vs[idx_of(vs, v).expect("stored vertex")].key,
        }
    };

    // ---- 3. Orientation flips out of touched vertices. -------------
    // A stored edge t→w flips to w→t iff t's grown key overtakes w's
    // (possibly also grown) key. The reverse never happens: an edge
    // stored at an untouched u points at keys that only grow further
    // away.
    let mut flip_removals: FastMap<u64, FastSet<u64>> = FastMap::default(); // source -> targets out
    let mut additions: FastMap<u64, Vec<(u64, EM)>> = FastMap::default(); // source -> (target, em)
    let mut rev_inserts: Vec<(u64, u64)> = Vec::new(); // (target, apex)
    let mut rev_removals: Vec<(u64, u64)> = Vec::new();
    for &t in &touched {
        let Some(it) = idx_of(vertices, t) else {
            continue; // brand-new vertex: nothing stored yet
        };
        let kt = newkey[&t].1;
        // Split borrows: read t's old adjacency while probing keys.
        for e in &vertices[it].adj {
            let kw = match newkey.get(&e.v) {
                Some(&(_, k)) => k,
                None => e.key,
            };
            if kt > kw {
                flip_removals.entry(t).or_default().insert(e.v);
                additions.entry(e.v).or_default().push((t, e.em.clone()));
                rev_removals.push((e.v, t));
                rev_inserts.push((t, e.v));
            }
        }
    }

    // ---- 4. Orient and stage the new edges. ------------------------
    // apex -> targets of its new-edge entries (for the delta plan).
    let mut new_targets: FastMap<u64, FastSet<u64>> = FastMap::default();
    for (a, b, em) in &new_edges {
        let (src, dst) = if newkey[a].1 < newkey[b].1 {
            (*a, *b)
        } else {
            (*b, *a)
        };
        additions.entry(src).or_default().push((dst, em.clone()));
        new_targets.entry(src).or_default().insert(dst);
        rev_inserts.push((dst, src));
    }

    // ---- 5. Final d+ of every vertex whose out-degree changes. -----
    let mut ddelta: FastMap<u64, i64> = FastMap::default();
    for (src, list) in &additions {
        *ddelta.entry(*src).or_insert(0) += list.len() as i64;
    }
    for (src, set) in &flip_removals {
        *ddelta.entry(*src).or_insert(0) -= set.len() as i64;
    }
    ddelta.retain(|_, d| *d != 0);
    let mut final_dplus: FastMap<u64, u64> = FastMap::default();
    for (&v, &d) in &ddelta {
        let old = match idx_of(vertices, v) {
            Some(i) => vertices[i].adj.len() as i64,
            None => 0,
        };
        final_dplus.insert(v, (old + d) as u64);
    }
    let dplus_after = |vs: &[LocalVertex<VM, EM>], v: u64| -> u64 {
        match final_dplus.get(&v) {
            Some(&d) => d,
            None => vs[idx_of(vs, v).expect("stored vertex")].adj.len() as u64,
        }
    };

    // ---- 6. The affected record set R. -----------------------------
    // Touched vertices (own degree/key fields), every source of an
    // addition or flip-out, and — via the reverse index — every apex
    // storing an entry whose key (target touched) or dplus_v (target's
    // d+ changed) annotation went stale.
    let mut rset: FastSet<u64> = FastSet::default();
    rset.extend(touched.iter().copied());
    rset.extend(additions.keys().copied());
    rset.extend(flip_removals.keys().copied());
    for &t in &touched {
        rset.extend(rev.apexes(t).iter().copied());
    }
    for v in ddelta.keys() {
        rset.extend(rev.apexes(*v).iter().copied());
    }
    let mut rebuild: Vec<u64> = rset.into_iter().collect();
    rebuild.sort_unstable();

    // ---- 7. Create brand-new vertex records. -----------------------
    if !brand_new.is_empty() {
        let Admit::With(vm_fn) = &admit else {
            unreachable!("strict mode validated every endpoint");
        };
        for &v in &brand_new {
            let (degree, key) = newkey[&v];
            vertices.push(LocalVertex {
                id: v,
                degree,
                key,
                meta: vm_fn(v),
                adj: Vec::new(),
            });
        }
        vertices.sort_by_key(|v| v.id);
    }

    // ---- 8. Rebuild each affected record (id order). ---------------
    // Only `adj`, `degree`, and `key` of the record itself change;
    // `meta` of *other* records is stable, so cross-record reads during
    // the in-place sweep are safe regardless of rebuild order.
    for &v in &rebuild {
        let iv = idx_of(vertices, v).expect("affected vertex exists");
        let expected_dplus = dplus_after(vertices, v);
        let old_adj = std::mem::take(&mut vertices[iv].adj);
        let removed = flip_removals.get(&v);
        let added = additions.get(&v);
        let mut out: Vec<AdjEntry<VM, EM>> =
            Vec::with_capacity(old_adj.len() + added.map_or(0, Vec::len));
        for mut e in old_adj {
            if removed.is_some_and(|s| s.contains(&e.v)) {
                continue;
            }
            if let Some(&(_, k)) = newkey.get(&e.v) {
                e.key = k;
            }
            if final_dplus.contains_key(&e.v) {
                e.dplus_v = dplus_after(vertices, e.v);
            }
            out.push(e);
        }
        if let Some(list) = added {
            for (tgt, em) in list {
                let it = idx_of(vertices, *tgt).expect("addition target exists");
                out.push(AdjEntry {
                    v: *tgt,
                    key: key_after(vertices, *tgt),
                    dplus_v: dplus_after(vertices, *tgt),
                    em: em.clone(),
                    vm: vertices[it].meta.clone(),
                });
            }
        }
        // The builder's canonical entry order.
        out.sort_by_key(|e| e.key);
        debug_assert_eq!(out.len() as u64, expected_dplus, "d+ of {v}");
        let rec = &mut vertices[iv];
        rec.adj = out;
        if let Some(&(d, k)) = newkey.get(&v) {
            rec.degree = d;
            rec.key = k;
        }
    }

    // ---- 9. Maintain the reverse index. ----------------------------
    for (target, apex) in rev_removals {
        rev.remove(target, apex);
    }
    for (target, apex) in rev_inserts {
        rev.insert(target, apex);
    }

    // ---- 10. Derive the delta-wedge plan. --------------------------
    let mut apexes: FastMap<u64, ApexDelta> = FastMap::default();
    for (&p, targets) in &new_targets {
        let adj = &vertices[idx_of(vertices, p).expect("apex exists")].adj;
        let new_idx: Vec<u32> = adj
            .iter()
            .enumerate()
            .filter(|(_, e)| targets.contains(&e.v))
            .map(|(i, _)| i as u32)
            .collect();
        debug_assert_eq!(new_idx.len(), targets.len(), "new entries of {p}");
        apexes.entry(p).or_default().new_idx = new_idx;
    }
    // Wedges closed by a new edge {a, b}: apexes storing entries for
    // BOTH endpoints where neither entry is itself new (those wedges
    // are already generated by the new_idx paths).
    for (a, b, _) in &new_edges {
        let (la, lb) = (rev.apexes(*a), rev.apexes(*b));
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            match la[i].cmp(&lb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let p = la[i];
                    i += 1;
                    j += 1;
                    if new_targets
                        .get(&p)
                        .is_some_and(|s| s.contains(a) || s.contains(b))
                    {
                        continue;
                    }
                    let adj = &vertices[idx_of(vertices, p).expect("apex exists")].adj;
                    let pos = |t: u64| {
                        let k = key_after(vertices, t);
                        adj.binary_search_by(|e| e.key.cmp(&k))
                            .expect("closing entry present") as u32
                    };
                    let (ia, ib) = (pos(*a), pos(*b));
                    let pair = (ia.min(ib), ia.max(ib));
                    apexes.entry(p).or_default().closing.push(pair);
                }
            }
        }
    }
    for ap in apexes.values_mut() {
        ap.closing.sort_unstable();
    }

    Ok(BatchDelta {
        new_edges: new_edges.into_iter().map(|(a, b, _)| (a, b)).collect(),
        new_vertices: brand_new,
        apexes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dodgr::build_dist_graph;
    use crate::edge_list::EdgeList;
    use crate::partition::Partition;
    use tripoll_ygm::World;

    type V = LocalVertex<u64, u32>;

    /// From-scratch single-rank build over an edge list (the resident
    /// tier's global-storage shape).
    fn build(edges: &[(u64, u64, u32)]) -> Vec<V> {
        let list = EdgeList::from_vec(edges.to_vec());
        let mut out = World::new(1).run(|comm| {
            let g = build_dist_graph(
                comm,
                list.as_slice().to_vec(),
                |v| v * 31 + 7,
                Partition::Hashed,
            );
            g.shard().vertices().to_vec()
        });
        let mut vs = out.pop().unwrap();
        vs.sort_by_key(|v| v.id);
        vs
    }

    fn em_of(u: u64, v: u64) -> u32 {
        ((u.min(v) as u32) << 8) | (u.max(v) as u32)
    }

    /// Exact structural equality of two global vertex lists.
    fn assert_identical(got: &[V], want: &[V]) {
        assert_eq!(got.len(), want.len(), "vertex count");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.id, w.id);
            assert_eq!(g.degree, w.degree, "degree of {}", g.id);
            assert_eq!(g.key, w.key, "key of {}", g.id);
            assert_eq!(g.meta, w.meta, "meta of {}", g.id);
            assert_eq!(g.adj.len(), w.adj.len(), "d+ of {}", g.id);
            for (a, b) in g.adj.iter().zip(&w.adj) {
                assert_eq!(
                    (a.v, a.key, a.dplus_v, a.em, a.vm),
                    (b.v, b.key, b.dplus_v, b.em, b.vm),
                    "entry of {}",
                    g.id
                );
            }
        }
    }

    fn meta_edges(pairs: &[(u64, u64)]) -> Vec<(u64, u64, u32)> {
        pairs.iter().map(|&(u, v)| (u, v, em_of(u, v))).collect()
    }

    /// Ingest `batch` onto `base` and compare against a from-scratch
    /// build of the concatenation.
    fn check_incremental(base: &[(u64, u64)], batch: &[(u64, u64)]) {
        let base = meta_edges(base);
        let batch = meta_edges(batch);
        let mut vertices = build(&base);
        let mut rev = ReverseIndex::build(&vertices);
        apply_edge_batch_with(&mut vertices, &mut rev, &batch, |v| v * 31 + 7).unwrap();
        let mut all = base;
        all.extend(batch);
        assert_identical(&vertices, &build(&all));
        // The maintained reverse index matches a fresh build.
        let fresh = ReverseIndex::build(&vertices);
        for lv in &vertices {
            assert_eq!(rev.apexes(lv.id), fresh.apexes(lv.id), "rev[{}]", lv.id);
        }
    }

    #[test]
    fn append_to_empty_storage_matches_build() {
        check_incremental(&[], &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn new_edges_between_existing_vertices() {
        check_incremental(&[(0, 1), (1, 2), (2, 3), (3, 4)], &[(0, 2), (1, 3)]);
    }

    #[test]
    fn batch_introducing_new_vertices() {
        check_incremental(&[(0, 1), (1, 2)], &[(2, 9), (9, 10), (10, 0)]);
    }

    #[test]
    fn degree_growth_flips_orientation() {
        // A star around 5 grows 5's degree past its neighbors', forcing
        // previously-outgoing edges of 5 to flip toward the leaves.
        check_incremental(
            &[(5, 0), (5, 1), (0, 1), (1, 2)],
            &[(5, 2), (5, 3), (5, 4), (5, 6), (5, 7)],
        );
    }

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let base = meta_edges(&[(0, 1), (1, 2)]);
        let mut vertices = build(&base);
        let mut rev = ReverseIndex::build(&vertices);
        // (1,0) duplicates (0,1) reversed; (3,3) is a self-loop; the
        // two (1,2)-with-different-metadata records keep the stored em.
        let batch = vec![(1u64, 0u64, 999u32), (3, 3, 999), (2, 1, 999)];
        let delta = apply_edge_batch(&mut vertices, &mut rev, &batch).unwrap();
        assert!(delta.is_empty());
        assert_identical(&vertices, &build(&base));
    }

    #[test]
    fn within_batch_duplicate_keeps_first() {
        let mut vertices = build(&meta_edges(&[(0, 1)]));
        let mut rev = ReverseIndex::build(&vertices);
        let batch = vec![(1u64, 2u64, 42u32), (2, 1, 999)];
        let delta = apply_edge_batch_with(&mut vertices, &mut rev, &batch, |v| v * 31 + 7).unwrap();
        assert_eq!(delta.new_edges, vec![(1, 2)]);
        let mut all = meta_edges(&[(0, 1)]);
        all.push((1, 2, 42));
        assert_identical(&vertices, &build(&all));
    }

    #[test]
    fn strict_mode_rejects_unknown_vertices_without_mutating() {
        let base = meta_edges(&[(0, 1), (1, 2)]);
        let mut vertices = build(&base);
        let mut rev = ReverseIndex::build(&vertices);
        let err =
            apply_edge_batch(&mut vertices, &mut rev, &meta_edges(&[(0, 2), (2, 77)])).unwrap_err();
        assert_eq!(err, GraphError::UnknownVertex { vertex: 77 });
        assert_identical(&vertices, &build(&base));
    }

    #[test]
    fn delta_plan_indexes_new_and_closing_wedges() {
        // Vertex 0 (degree 2) stores its higher-degree neighbors 1 and
        // 2; the batch edge (1,2) closes the old wedge 1-0-2 without
        // touching 0's own entries, and is itself stored as one new
        // entry at whichever of {1, 2} has the smaller grown key.
        let base = &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)];
        let mut vertices = build(&meta_edges(base));
        let mut rev = ReverseIndex::build(&vertices);
        let delta = apply_edge_batch(&mut vertices, &mut rev, &meta_edges(&[(1, 2)])).unwrap();
        assert_eq!(delta.new_edges, vec![(1, 2)]);
        let closing: usize = delta.apexes.values().map(|a| a.closing.len()).sum();
        let new_entries: usize = delta.apexes.values().map(|a| a.new_idx.len()).sum();
        assert_eq!(new_entries, 1, "one new stored edge");
        assert_eq!(closing, 1, "exactly one closed wedge");
        let zero = &delta.apexes[&0];
        assert!(zero.new_idx.is_empty(), "0's entries are all old");
        assert_eq!(zero.closing, vec![(0, 1)], "0's two entries close");
    }

    #[test]
    fn repeated_batches_converge_like_one_shot() {
        let all: Vec<(u64, u64)> = (0..18u64)
            .flat_map(|i| [(i, (i + 3) % 18), (i, (i + 7) % 18)])
            .collect();
        for split in [1, 3, 6] {
            let chunks: Vec<&[(u64, u64)]> = all.chunks(all.len().div_ceil(split)).collect();
            let mut vertices: Vec<V> = Vec::new();
            let mut rev = ReverseIndex::default();
            let mut prefix: Vec<(u64, u64, u32)> = Vec::new();
            for chunk in chunks {
                let batch = meta_edges(chunk);
                apply_edge_batch_with(&mut vertices, &mut rev, &batch, |v| v * 31 + 7).unwrap();
                prefix.extend(batch);
                assert_identical(&vertices, &build(&prefix));
            }
        }
    }
}
