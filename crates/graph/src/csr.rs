//! Serial compressed-sparse-row graph.
//!
//! The single-machine view of a graph, used by the analysis crate (serial
//! reference triangle counting, Louvain post-processing) and by tests as
//! the oracle the distributed engines are validated against. Stores the
//! symmetrized simple graph: `neighbors(v)` is sorted and deduplicated,
//! and `(u,v)` present implies `(v,u)` present.

use rayon::prelude::*;

use crate::error::GraphError;

/// A symmetrized, deduplicated graph in CSR form.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u64>,
    /// Dense remap: `vertex_ids[i]` is the original id of CSR vertex `i`.
    vertex_ids: Vec<u64>,
}

impl Csr {
    /// Builds a CSR from undirected edge records; self-loops and parallel
    /// edges are dropped. Vertex ids may be sparse — they are compacted,
    /// and the mapping retained in [`Csr::original_id`].
    pub fn from_edges(edges: &[(u64, u64)]) -> Csr {
        let mut ids: Vec<u64> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        ids.par_sort_unstable();
        ids.dedup();
        // The id set is derived from the edges themselves, so every
        // endpoint is present and `try_from_parts` cannot fail here.
        Csr::try_from_parts(ids, edges).expect("ids derived from edges")
    }

    /// Builds a CSR over an explicitly supplied, sorted, deduplicated
    /// vertex-id set. Unlike [`Csr::from_edges`], the id set may come
    /// from a different source than the edges (a snapshot header, a
    /// vertex file), so an edge endpoint absent from `ids` is a data
    /// defect reported as [`GraphError::UnknownVertex`] rather than a
    /// panic.
    pub fn try_from_parts(ids: Vec<u64>, edges: &[(u64, u64)]) -> Result<Csr, GraphError> {
        let index_of = |v: u64| -> Result<u64, GraphError> {
            ids.binary_search(&v)
                .map(|i| i as u64)
                .map_err(|_| GraphError::UnknownVertex { vertex: v })
        };

        let mut directed: Vec<(u64, u64)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u == v {
                // Self-loops still need their endpoint validated so a
                // corrupt file cannot smuggle an unknown id through.
                index_of(u)?;
                continue;
            }
            let (a, b) = (index_of(u)?, index_of(v)?);
            directed.push((a, b));
            directed.push((b, a));
        }
        directed.par_sort_unstable();
        directed.dedup();

        let n = ids.len();
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &directed {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = directed.into_iter().map(|(_, v)| v).collect();
        Ok(Csr {
            offsets,
            targets,
            vertex_ids: ids,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of *directed* edges (nonzeros of the symmetrized matrix) —
    /// the convention of the paper's Table 1.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbor list of CSR vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u64] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of CSR vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Original id of CSR vertex `v`.
    #[inline]
    pub fn original_id(&self, v: usize) -> u64 {
        self.vertex_ids[v]
    }

    /// CSR index of an original vertex id, if present.
    pub fn csr_index(&self, original: u64) -> Option<usize> {
        self.vertex_ids.binary_search(&original).ok()
    }

    /// True if the (undirected) edge `{u, v}` exists, by CSR indices.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u64)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let csr = Csr::from_edges(&[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_directed_edges(), 6);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.degree(1), 2);
        assert!(csr.has_edge(0, 2));
    }

    #[test]
    fn symmetrization_and_dedup() {
        // (1,2) given twice plus both directions; self-loop dropped.
        let csr = Csr::from_edges(&[(1, 2), (2, 1), (1, 2), (3, 3)]);
        assert_eq!(csr.num_vertices(), 3); // 1, 2, 3 (3 isolated after loop removal)
        assert_eq!(csr.num_directed_edges(), 2);
        let i1 = csr.csr_index(1).unwrap();
        let i2 = csr.csr_index(2).unwrap();
        assert!(csr.has_edge(i1, i2));
        assert!(csr.has_edge(i2, i1));
        let i3 = csr.csr_index(3).unwrap();
        assert_eq!(csr.degree(i3), 0);
    }

    #[test]
    fn sparse_ids_are_compacted() {
        let csr = Csr::from_edges(&[(1_000_000, 5), (5, 42)]);
        assert_eq!(csr.num_vertices(), 3);
        let idx = csr.csr_index(1_000_000).unwrap();
        assert_eq!(csr.original_id(idx), 1_000_000);
        assert_eq!(csr.degree(idx), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let csr = Csr::from_edges(&[(0, 5), (0, 2), (0, 9), (0, 1)]);
        let i0 = csr.csr_index(0).unwrap();
        let ns = csr.neighbors(i0);
        let mut sorted = ns.to_vec();
        sorted.sort_unstable();
        assert_eq!(ns, &sorted[..]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(&[]);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_directed_edges(), 0);
        assert_eq!(csr.max_degree(), 0);
    }

    #[test]
    fn unknown_endpoint_is_an_error_not_a_panic() {
        let err = Csr::try_from_parts(vec![1, 2], &[(1, 2), (2, 7)]).unwrap_err();
        assert_eq!(err, GraphError::UnknownVertex { vertex: 7 });
        // Self-loop endpoints are validated too.
        let err = Csr::try_from_parts(vec![1, 2], &[(9, 9)]).unwrap_err();
        assert_eq!(err, GraphError::UnknownVertex { vertex: 9 });
    }

    #[test]
    fn try_from_parts_matches_from_edges() {
        let edges = [(0u64, 5u64), (5, 42), (42, 0), (0, 9)];
        let via_parts = Csr::try_from_parts(vec![0, 5, 9, 42], &edges).unwrap();
        let via_edges = Csr::from_edges(&edges);
        assert_eq!(via_parts.num_vertices(), via_edges.num_vertices());
        assert_eq!(
            via_parts.num_directed_edges(),
            via_edges.num_directed_edges()
        );
        for v in 0..via_parts.num_vertices() {
            assert_eq!(via_parts.neighbors(v), via_edges.neighbors(v));
        }
    }

    #[test]
    fn isolated_ids_in_explicit_set_are_kept() {
        let csr = Csr::try_from_parts(vec![3, 4, 8], &[(3, 4)]).unwrap();
        assert_eq!(csr.num_vertices(), 3);
        let i8 = csr.csr_index(8).unwrap();
        assert_eq!(csr.degree(i8), 0);
    }

    #[test]
    fn max_degree_star() {
        let edges: Vec<(u64, u64)> = (1..=7u64).map(|v| (0, v)).collect();
        let csr = Csr::from_edges(&edges);
        assert_eq!(csr.max_degree(), 7);
    }
}
