//! The degree ordering `<+` (paper §3).
//!
//! Triangle enumeration on the degree-ordered directed graph needs a
//! *total* order on vertices: `u <+ v` iff `d(u) < d(v)`, with ties broken
//! by a deterministic hash. Our tie-break is [`hash64`], which is
//! bijective on `u64`, so `OrderKey` equality implies vertex equality —
//! the property that lets merge-path intersection identify matching
//! vertices by key comparison alone.

use tripoll_ygm::hash::hash64;

/// Position of a vertex in the `<+` order: degree first, then a
/// deterministic hash of the vertex id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderKey {
    /// Undirected degree `d(v)`.
    pub degree: u64,
    /// Deterministic tie-break, `hash64(v)`.
    pub tie: u64,
}

impl OrderKey {
    /// Key of vertex `v` with undirected degree `degree`.
    #[inline]
    pub fn new(v: u64, degree: u64) -> Self {
        OrderKey {
            degree,
            tie: hash64(v),
        }
    }
}

/// `u <+ v` given both degrees.
#[inline]
pub fn dodgr_less(u: u64, deg_u: u64, v: u64, deg_v: u64) -> bool {
    OrderKey::new(u, deg_u) < OrderKey::new(v, deg_v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_dominates() {
        assert!(dodgr_less(100, 1, 5, 2));
        assert!(!dodgr_less(5, 2, 100, 1));
    }

    #[test]
    fn hash_breaks_ties_deterministically() {
        let a = dodgr_less(1, 5, 2, 5);
        let b = dodgr_less(2, 5, 1, 5);
        assert_ne!(a, b, "exactly one direction holds");
        // Stable across calls.
        assert_eq!(a, dodgr_less(1, 5, 2, 5));
    }

    #[test]
    fn total_order_no_self_less() {
        assert!(!dodgr_less(7, 3, 7, 3));
    }

    #[test]
    fn key_equality_implies_same_vertex() {
        // hash64 is bijective, so same (degree, tie) means same id.
        for u in 0..1000u64 {
            for v in (u + 1)..(u + 4) {
                assert_ne!(OrderKey::new(u, 9), OrderKey::new(v, 9));
            }
        }
    }

    #[test]
    fn keys_sort_by_degree_then_tie() {
        let mut keys = [
            OrderKey::new(1, 10),
            OrderKey::new(2, 3),
            OrderKey::new(3, 3),
            OrderKey::new(4, 1),
        ];
        keys.sort();
        assert_eq!(keys[0].degree, 1);
        assert_eq!(keys[3].degree, 10);
        assert_eq!(keys[1].degree, 3);
        assert_eq!(keys[2].degree, 3);
        assert!(keys[1].tie < keys[2].tie);
    }
}
