//! Edge-list file I/O.
//!
//! The paper's datasets arrive as edge-list files (SNAP/WebGraph-style
//! text); a usable release needs loaders. The format here is the common
//! denominator those corpora share:
//!
//! ```text
//! # comment lines start with '#' (or '%', as in Matrix Market headers)
//! <u> <v>              # topology-only line
//! <u> <v> <attr>       # with one integer attribute (timestamp, label)
//! ```
//!
//! Fields are separated by any ASCII whitespace. Lines are validated —
//! a malformed line reports its number rather than being skipped
//! silently.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::error::GraphError;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line that does not parse; `(line number, content)`.
    Malformed(usize, String),
    /// The file parsed, but the graph it describes is structurally
    /// defective (e.g. an edge endpoint outside the declared vertex set).
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Malformed(line, content) => {
                write!(f, "malformed edge on line {line}: {content:?}")
            }
            IoError::Graph(e) => write!(f, "structural defect: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with('#') || t.starts_with('%')
}

/// Parses a topology-only edge list from a reader (extra columns are
/// ignored).
pub fn parse_edges<R: Read>(reader: R) -> Result<Vec<(u64, u64)>, IoError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            return Err(IoError::Malformed(idx + 1, line.clone()));
        };
        match (u.parse(), v.parse()) {
            (Ok(u), Ok(v)) => out.push((u, v)),
            _ => return Err(IoError::Malformed(idx + 1, line.clone())),
        }
    }
    Ok(out)
}

/// Parses an edge list whose third column is an integer attribute
/// (timestamp or label). Lines without a third column default to 0.
pub fn parse_edges_with_attr<R: Read>(reader: R) -> Result<Vec<(u64, u64, u64)>, IoError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            return Err(IoError::Malformed(idx + 1, line.clone()));
        };
        let attr = it.next().unwrap_or("0");
        match (u.parse(), v.parse(), attr.parse()) {
            (Ok(u), Ok(v), Ok(a)) => out.push((u, v, a)),
            _ => return Err(IoError::Malformed(idx + 1, line.clone())),
        }
    }
    Ok(out)
}

/// Reads a topology-only edge-list file.
pub fn read_edge_file<P: AsRef<Path>>(path: P) -> Result<Vec<(u64, u64)>, IoError> {
    parse_edges(std::fs::File::open(path)?)
}

/// Reads an attributed edge-list file (third column = timestamp/label).
pub fn read_edge_file_with_attr<P: AsRef<Path>>(path: P) -> Result<Vec<(u64, u64, u64)>, IoError> {
    parse_edges_with_attr(std::fs::File::open(path)?)
}

/// Reads a topology-only edge-list file straight into a serial [`Csr`].
pub fn read_csr_file<P: AsRef<Path>>(path: P) -> Result<Csr, IoError> {
    Ok(Csr::from_edges(&read_edge_file(path)?))
}

/// Reads an edge-list file into a [`Csr`] over an explicitly supplied,
/// sorted, deduplicated vertex-id set. An edge endpoint absent from
/// `ids` surfaces as [`IoError::Graph`] instead of a panic — the
/// hardened path for files whose vertex set comes from elsewhere (a
/// snapshot header, a vertex manifest).
pub fn read_csr_file_with_vertices<P: AsRef<Path>>(path: P, ids: Vec<u64>) -> Result<Csr, IoError> {
    let edges = read_edge_file(path)?;
    Ok(Csr::try_from_parts(ids, &edges)?)
}

/// Writes an attributed edge list in the same format (with a header
/// comment), so surveys can round-trip their inputs.
pub fn write_edge_file<P: AsRef<Path>>(path: P, edges: &EdgeList<u64>) -> Result<(), IoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# tripoll edge list: <u> <v> <attr>")?;
    for (u, v, a) in edges.as_slice() {
        writeln!(w, "{u}\t{v}\t{a}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_edges() {
        let text = "# header\n0 1\n1 2\n\n% mm comment\n2\t0\n";
        let edges = parse_edges(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parses_attributes_and_defaults() {
        let text = "5 9 1000\n9 7\n";
        let edges = parse_edges_with_attr(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(5, 9, 1000), (9, 7, 0)]);
    }

    #[test]
    fn extra_columns_ignored_for_topology() {
        let text = "1 2 999 extra junk\n";
        assert_eq!(parse_edges(text.as_bytes()).unwrap(), vec![(1, 2)]);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "0 1\nnot numbers\n";
        match parse_edges(text.as_bytes()) {
            Err(IoError::Malformed(line, content)) => {
                assert_eq!(line, 2);
                assert!(content.contains("not"));
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(parse_edges("1\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tripoll-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.tsv");

        let list = EdgeList::from_vec(vec![(1u64, 2u64, 100u64), (2, 3, 200)]);
        write_edge_file(&path, &list).unwrap();

        let back = read_edge_file_with_attr(&path).unwrap();
        assert_eq!(back, vec![(1, 2, 100), (2, 3, 200)]);
        let topo = read_edge_file(&path).unwrap();
        assert_eq!(topo, vec![(1, 2), (2, 3)]);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csr_loader_surfaces_unknown_vertices_structurally() {
        let dir = std::env::temp_dir().join("tripoll-io-csr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.tsv");
        std::fs::write(&path, "1 2\n2 7\n").unwrap();

        let csr = read_csr_file(&path).unwrap();
        assert_eq!(csr.num_vertices(), 3);

        // Vertex manifest missing id 7: structured error, not a panic.
        match read_csr_file_with_vertices(&path, vec![1, 2]) {
            Err(IoError::Graph(GraphError::UnknownVertex { vertex: 7 })) => {}
            other => panic!("expected UnknownVertex(7), got {other:?}"),
        }
        let ok = read_csr_file_with_vertices(&path, vec![1, 2, 7]).unwrap();
        assert_eq!(ok.num_directed_edges(), 4);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_edge_file("/nonexistent/tripoll/file.tsv"),
            Err(IoError::Io(_))
        ));
    }
}
