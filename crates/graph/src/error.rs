//! Structured errors for graph construction.
//!
//! Historically the construction paths panicked on malformed input
//! (`binary_search(..).expect("vertex present")`), which is acceptable
//! for trusted in-process callers but not for data that arrives from
//! files or snapshots. Fallible constructors return [`GraphError`]
//! instead so loaders can surface the defect to the caller.

use std::fmt;

/// A structural defect in graph input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint references a vertex absent from the supplied
    /// vertex-id set.
    UnknownVertex {
        /// The offending vertex id.
        vertex: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex { vertex } => {
                write!(f, "edge references unknown vertex {vertex}")
            }
        }
    }
}

impl std::error::Error for GraphError {}
