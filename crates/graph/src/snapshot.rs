//! Versioned binary snapshots of DODGr storage.
//!
//! A snapshot captures everything needed to reconstitute resident graph
//! storage in O(read) time — no re-ingest, no symmetrization, no
//! degree/out-degree exchange rounds. The layout reuses the varint wire
//! machinery of `tripoll-ygm`:
//!
//! ```text
//! magic[8] = "TPLSNAP\0"
//! varint   schema version          (currently 1)
//! u8       partition tag           (0 = Cyclic, 1 = Hashed)
//! varint   section count
//! varint   total vertex count      (cross-checked after decode)
//! repeated section:
//!   varint   body length in bytes  (bounds-checked before reading)
//!   body:
//!     varint   vertex count
//!     repeated vertex:
//!       varint  id
//!       varint  undirected degree d(u)     (rebuilds the <+ key)
//!       VM      vertex metadata
//!       varint  out-degree d+(u)
//!       repeated adjacency entry:
//!         varint  target id v
//!         varint  target degree d(v)       (rebuilds the target key)
//!         varint  target out-degree d+(v)
//!         EM      edge metadata
//!         VM      target vertex metadata
//! ```
//!
//! Order keys are *not* stored: `OrderKey::new(v, degree)` is a pure
//! function of `(id, degree)`, so they are rebuilt on load and then
//! *validated* — each adjacency must be strictly increasing in `<+` and
//! strictly above its source vertex. Decoding is fully hostile-input
//! hardened: truncation, oversized section claims, unknown versions,
//! duplicate vertices and order violations all surface as structured
//! [`SnapshotError`]s; no input can panic the loader.

use std::fmt;
use std::path::Path;

use tripoll_ygm::wire::{put_varint, Wire, WireError, WireReader};

use crate::dodgr::{AdjEntry, LocalVertex};
use crate::order::OrderKey;
use crate::partition::Partition;

/// Leading magic bytes of every TriPoll snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TPLSNAP\0";

/// Schema version written by this build.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A structural defect in snapshot bytes.
#[derive(Debug)]
pub enum SnapshotError {
    /// The first eight bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header declares a schema version this build cannot read.
    UnsupportedVersion(u64),
    /// The partition tag byte is not a known [`Partition`].
    BadPartitionTag(u8),
    /// A section header claims more body bytes than remain in the input.
    SectionOverrun {
        /// Bytes the section header claimed.
        claimed: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A varint/metadata decode failed (truncation, overflow, bad value).
    Wire(WireError),
    /// Bytes remain after the structure was fully decoded — either
    /// trailing garbage after the last section or slack inside one.
    TrailingBytes,
    /// The decoded vertex count disagrees with the header.
    VertexCountMismatch {
        /// Count the header declared.
        expected: u64,
        /// Count actually decoded.
        actual: u64,
    },
    /// The same vertex id appears twice.
    DuplicateVertex {
        /// The repeated id.
        vertex: u64,
    },
    /// An adjacency list is not strictly increasing in `<+`, or an
    /// entry does not sort above its source vertex — the DODGr
    /// invariant every survey kernel relies on.
    AdjacencyOrder {
        /// The vertex whose adjacency is malformed.
        vertex: u64,
    },
    /// Underlying file I/O failure (save/load wrappers only).
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a TriPoll snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot schema version {v}")
            }
            SnapshotError::BadPartitionTag(t) => write!(f, "unknown partition tag {t}"),
            SnapshotError::SectionOverrun { claimed, remaining } => write!(
                f,
                "section claims {claimed} bytes but only {remaining} remain"
            ),
            SnapshotError::Wire(e) => write!(f, "snapshot decode error: {e:?}"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
            SnapshotError::VertexCountMismatch { expected, actual } => write!(
                f,
                "header declares {expected} vertices but sections hold {actual}"
            ),
            SnapshotError::DuplicateVertex { vertex } => {
                write!(f, "vertex {vertex} appears in more than one section")
            }
            SnapshotError::AdjacencyOrder { vertex } => {
                write!(f, "adjacency of vertex {vertex} violates the <+ order")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn partition_tag(p: Partition) -> u8 {
    match p {
        Partition::Cyclic => 0,
        Partition::Hashed => 1,
    }
}

fn partition_from_tag(t: u8) -> Result<Partition, SnapshotError> {
    match t {
        0 => Ok(Partition::Cyclic),
        1 => Ok(Partition::Hashed),
        other => Err(SnapshotError::BadPartitionTag(other)),
    }
}

/// Encodes DODGr storage into snapshot bytes. Vertices are grouped into
/// `nsections` sections by `partition.owner(id, nsections)`, so a
/// loader that keeps the same rank count can stream exactly the
/// sections it owns; any other rank count re-shards after decode.
pub fn encode_snapshot<VM: Wire, EM: Wire>(
    vertices: &[LocalVertex<VM, EM>],
    partition: Partition,
    nsections: usize,
) -> Vec<u8> {
    let nsections = nsections.max(1);
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_varint(&mut out, SNAPSHOT_VERSION);
    out.push(partition_tag(partition));
    put_varint(&mut out, nsections as u64);
    put_varint(&mut out, vertices.len() as u64);

    let mut body = Vec::new();
    for section in 0..nsections {
        body.clear();
        let mine = vertices
            .iter()
            .filter(|v| partition.owner(v.id, nsections) == section);
        put_varint(&mut body, mine.clone().count() as u64);
        for lv in mine {
            put_varint(&mut body, lv.id);
            put_varint(&mut body, lv.degree);
            lv.meta.encode(&mut body);
            put_varint(&mut body, lv.adj.len() as u64);
            for e in &lv.adj {
                put_varint(&mut body, e.v);
                put_varint(&mut body, e.key.degree);
                put_varint(&mut body, e.dplus_v);
                e.em.encode(&mut body);
                e.vm.encode(&mut body);
            }
        }
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
    }
    out
}

/// Decodes snapshot bytes back into the global vertex list (sorted by
/// id) and the partition it was built with. Every defect a hostile or
/// truncated input can exhibit returns a structured error.
pub fn decode_snapshot<VM: Wire, EM: Wire>(
    bytes: &[u8],
) -> Result<(Vec<LocalVertex<VM, EM>>, Partition), SnapshotError> {
    let mut r = WireReader::new(bytes);
    let magic = r.take(SNAPSHOT_MAGIC.len()).map_err(SnapshotError::Wire)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.take_varint()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let partition = partition_from_tag(r.take_u8()?)?;
    let nsections = r.take_varint()?;
    let total = r.take_varint()?;

    let mut vertices: Vec<LocalVertex<VM, EM>> = Vec::new();
    for _ in 0..nsections {
        let claimed = r.take_varint()?;
        if claimed as usize > r.remaining() {
            return Err(SnapshotError::SectionOverrun {
                claimed,
                remaining: r.remaining(),
            });
        }
        let body = r.take(claimed as usize).map_err(SnapshotError::Wire)?;
        let mut s = WireReader::new(body);
        let nverts = s.take_varint()?;
        for _ in 0..nverts {
            let id = s.take_varint()?;
            let degree = s.take_varint()?;
            let meta = VM::decode(&mut s)?;
            let key = OrderKey::new(id, degree);
            let dplus = s.take_varint()?;
            let mut adj: Vec<AdjEntry<VM, EM>> = Vec::new();
            let mut prev = key;
            for _ in 0..dplus {
                let v = s.take_varint()?;
                let deg_v = s.take_varint()?;
                let dplus_v = s.take_varint()?;
                let em = EM::decode(&mut s)?;
                let vm = VM::decode(&mut s)?;
                let kv = OrderKey::new(v, deg_v);
                if kv <= prev {
                    return Err(SnapshotError::AdjacencyOrder { vertex: id });
                }
                prev = kv;
                adj.push(AdjEntry {
                    v,
                    key: kv,
                    dplus_v,
                    em,
                    vm,
                });
            }
            vertices.push(LocalVertex {
                id,
                degree,
                key,
                meta,
                adj,
            });
        }
        if !s.is_empty() {
            return Err(SnapshotError::TrailingBytes);
        }
    }
    if !r.is_empty() {
        return Err(SnapshotError::TrailingBytes);
    }
    if vertices.len() as u64 != total {
        return Err(SnapshotError::VertexCountMismatch {
            expected: total,
            actual: vertices.len() as u64,
        });
    }
    vertices.sort_by_key(|v| v.id);
    if let Some(w) = vertices.windows(2).find(|w| w[0].id == w[1].id) {
        return Err(SnapshotError::DuplicateVertex { vertex: w[0].id });
    }
    Ok((vertices, partition))
}

/// Writes a snapshot to a file.
pub fn save_snapshot<VM: Wire, EM: Wire, P: AsRef<Path>>(
    path: P,
    vertices: &[LocalVertex<VM, EM>],
    partition: Partition,
    nsections: usize,
) -> Result<(), SnapshotError> {
    std::fs::write(path, encode_snapshot(vertices, partition, nsections))?;
    Ok(())
}

/// Reads a snapshot from a file.
pub fn load_snapshot<VM: Wire, EM: Wire, P: AsRef<Path>>(
    path: P,
) -> Result<(Vec<LocalVertex<VM, EM>>, Partition), SnapshotError> {
    decode_snapshot(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dodgr::build_dist_graph;
    use crate::edge_list::EdgeList;
    use tripoll_ygm::World;

    fn sample_vertices() -> Vec<LocalVertex<u64, u32>> {
        let edges: Vec<(u64, u64, u32)> = (0..24u64)
            .flat_map(|i| {
                [
                    (i, (i + 5) % 24, (i * 10) as u32),
                    (i, (i + 9) % 24, (i * 10 + 1) as u32),
                ]
            })
            .collect();
        let list = EdgeList::from_vec(edges);
        let mut out = World::new(1).run(move |comm| {
            let g = build_dist_graph(comm, list.as_slice().to_vec(), |v| v * 3, Partition::Hashed);
            g.shard().vertices().to_vec()
        });
        out.pop().unwrap()
    }

    fn assert_same(a: &[LocalVertex<u64, u32>], b: &[LocalVertex<u64, u32>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.degree, y.degree);
            assert_eq!(x.key, y.key);
            assert_eq!(x.meta, y.meta);
            assert_eq!(x.adj.len(), y.adj.len());
            for (p, q) in x.adj.iter().zip(&y.adj) {
                assert_eq!(
                    (p.v, p.key, p.dplus_v, p.em, p.vm),
                    (q.v, q.key, q.dplus_v, q.em, q.vm)
                );
            }
        }
    }

    #[test]
    fn roundtrip_all_section_counts() {
        let verts = sample_vertices();
        for nsections in [1, 2, 4, 7] {
            let bytes = encode_snapshot(&verts, Partition::Hashed, nsections);
            let (back, part) = decode_snapshot::<u64, u32>(&bytes).unwrap();
            assert_eq!(part, Partition::Hashed);
            assert_same(&verts, &back);
        }
    }

    #[test]
    fn partition_tag_roundtrips() {
        let verts = sample_vertices();
        let bytes = encode_snapshot(&verts, Partition::Cyclic, 3);
        let (_, part) = decode_snapshot::<u64, u32>(&bytes).unwrap();
        assert_eq!(part, Partition::Cyclic);
    }

    #[test]
    fn every_strict_prefix_errors_never_panics() {
        let verts = sample_vertices();
        let bytes = encode_snapshot(&verts, Partition::Hashed, 3);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot::<u64, u32>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn wrong_magic_and_future_version() {
        let verts = sample_vertices();
        let mut bytes = encode_snapshot(&verts, Partition::Hashed, 2);
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot::<u64, u32>(&wrong),
            Err(SnapshotError::BadMagic)
        ));
        // Version byte follows the 8-byte magic; bump it past v1.
        bytes[8] = 9;
        assert!(matches!(
            decode_snapshot::<u64, u32>(&bytes),
            Err(SnapshotError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn section_overrun_is_structured() {
        let verts = sample_vertices();
        let bytes = encode_snapshot(&verts, Partition::Hashed, 1);
        // First section length varint sits right after the fixed header
        // (magic 8 + version 1 + tag 1 + nsections 1 + total varint).
        let mut r = WireReader::new(&bytes[8..]);
        r.take_varint().unwrap();
        r.take_u8().unwrap();
        r.take_varint().unwrap();
        r.take_varint().unwrap();
        let len_at = 8 + r.position();
        let mut evil = bytes[..len_at].to_vec();
        put_varint(&mut evil, u64::MAX / 2);
        evil.extend_from_slice(&bytes[len_at..]);
        match decode_snapshot::<u64, u32>(&evil) {
            Err(SnapshotError::SectionOverrun { .. }) => {}
            other => panic!("expected SectionOverrun, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let verts = sample_vertices();
        let mut bytes = encode_snapshot(&verts, Partition::Hashed, 2);
        bytes.push(0);
        assert!(matches!(
            decode_snapshot::<u64, u32>(&bytes),
            Err(SnapshotError::TrailingBytes)
        ));
    }

    #[test]
    fn empty_storage_roundtrips() {
        let bytes = encode_snapshot::<u64, u32>(&[], Partition::Hashed, 4);
        let (verts, _) = decode_snapshot::<u64, u32>(&bytes).unwrap();
        assert!(verts.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let verts = sample_vertices();
        let dir = std::env::temp_dir().join("tripoll-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tps");
        save_snapshot(&path, &verts, Partition::Hashed, 4).unwrap();
        let (back, part) = load_snapshot::<u64, u32, _>(&path).unwrap();
        assert_eq!(part, Partition::Hashed);
        assert_same(&verts, &back);
        std::fs::remove_dir_all(&dir).ok();
    }
}
