//! # tripoll-graph — graph substrate for TriPoll
//!
//! Storage and preprocessing for metadata-decorated graphs, reproducing
//! §3 and §4.2 of the TriPoll paper (SC'21, arXiv:2107.12330):
//!
//! * [`edge_list`] — ingest: symmetrization, self-loop removal, duplicate
//!   collapse (with a configurable "keep chronologically first" policy for
//!   temporal multigraphs).
//! * [`order`] — the degree ordering `<+` with deterministic hash
//!   tie-break.
//! * [`partition`] — cyclic and hashed (`random`) vertex-to-rank maps.
//! * [`dodgr`] — the distributed degree-ordered directed graph with the
//!   metadata-augmented adjacency `Adjm+`, built in three asynchronous
//!   communication rounds.
//! * [`csr`] — the serial CSR view used for reference computations and
//!   post-processing.
//! * [`directed`] — directed-input support: collapse arcs to undirected
//!   edges tagged with their original directionality (§4's "additional
//!   two bits of storage").
//! * [`ingest`] — incremental edge-batch ingestion: append a batch to
//!   existing DODGr storage bit-identically to a from-scratch build,
//!   and derive the delta-wedge plan for incremental surveys.
//! * [`io`] — SNAP-style edge-list file readers/writers.
//! * [`snapshot`] — versioned binary snapshots of DODGr storage for
//!   O(read) restart of a resident graph.
//! * [`error`] — structured errors for graph construction from
//!   untrusted input.

#![warn(missing_docs)]

pub mod csr;
pub mod directed;
pub mod dodgr;
pub mod edge_list;
pub mod error;
pub mod ingest;
pub mod io;
pub mod order;
pub mod partition;
pub mod snapshot;

pub use csr::Csr;
pub use directed::{from_directed_edges, Provenance};
pub use dodgr::{build_dist_graph, AdjEntry, DistGraph, GraphStats, LocalShard, LocalVertex};
pub use edge_list::EdgeList;
pub use error::GraphError;
pub use ingest::{apply_edge_batch, apply_edge_batch_with, ApexDelta, BatchDelta, ReverseIndex};
pub use order::{dodgr_less, OrderKey};
pub use partition::Partition;
pub use snapshot::{
    decode_snapshot, encode_snapshot, load_snapshot, save_snapshot, SnapshotError, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
