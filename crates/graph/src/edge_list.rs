//! Edge-list ingest utilities.
//!
//! Generators and file readers produce flat `(u, v, meta)` records; these
//! helpers canonicalize them the way the paper's datasets are prepared
//! (§5.2): graphs are treated as undirected, self-loops dropped, parallel
//! edges collapsed, and edge counts reported as *directed* edges after
//! symmetrization (nonzeros of the symmetrized adjacency matrix).

/// A list of undirected edges with metadata of type `EM`.
#[derive(Debug, Clone, Default)]
pub struct EdgeList<EM> {
    edges: Vec<(u64, u64, EM)>,
}

impl<EM> EdgeList<EM> {
    /// Creates an empty list.
    pub fn new() -> Self {
        EdgeList { edges: Vec::new() }
    }

    /// Creates a list from raw records (kept as given).
    pub fn from_vec(edges: Vec<(u64, u64, EM)>) -> Self {
        EdgeList { edges }
    }

    /// Appends an edge.
    pub fn push(&mut self, u: u64, v: u64, meta: EM) {
        self.edges.push((u, v, meta));
    }

    /// Number of records currently held (before canonicalization this may
    /// include duplicates and self-loops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrowed view of the records.
    pub fn as_slice(&self) -> &[(u64, u64, EM)] {
        &self.edges
    }

    /// Consumes the list, returning the records.
    pub fn into_vec(self) -> Vec<(u64, u64, EM)> {
        self.edges
    }

    /// Removes self-loops and collapses parallel edges, keeping each
    /// undirected edge exactly once as `(min(u,v), max(u,v), meta)`.
    ///
    /// When duplicates carry different metadata the record that sorts
    /// first under `key` wins — the Reddit preparation in §5.2 ("keeps the
    /// chronologically-first comment") is `canonicalize_by(|m| timestamp)`.
    pub fn canonicalize_by<K: Ord>(mut self, key: impl Fn(&EM) -> K) -> Self {
        self.edges.retain(|(u, v, _)| u != v);
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then_with(|| key(&a.2).cmp(&key(&b.2)))
        });
        self.edges
            .dedup_by(|next, first| (next.0, next.1) == (first.0, first.1));
        self
    }

    /// [`Self::canonicalize_by`] with arbitrary duplicate choice (fine when
    /// duplicates never differ in metadata, e.g. topology-only graphs).
    pub fn canonicalize(self) -> Self {
        self.canonicalize_by(|_| 0u8)
    }

    /// This rank's share of the records under a strided decomposition —
    /// the SPMD idiom for feeding a deterministic global list into a
    /// distributed build.
    pub fn stride_for_rank(&self, rank: usize, nranks: usize) -> Vec<(u64, u64, EM)>
    where
        EM: Clone,
    {
        self.edges
            .iter()
            .skip(rank)
            .step_by(nranks)
            .cloned()
            .collect()
    }

    /// Number of distinct vertices touched by the records.
    pub fn vertex_count(&self) -> usize {
        let mut ids: Vec<u64> = self.edges.iter().flat_map(|(u, v, _)| [*u, *v]).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_removes_self_loops_and_duplicates() {
        let list = EdgeList::from_vec(vec![
            (1u64, 2u64, ()),
            (2, 1, ()),
            (3, 3, ()),
            (2, 3, ()),
            (1, 2, ()),
        ])
        .canonicalize();
        assert_eq!(list.as_slice(), &[(1, 2, ()), (2, 3, ())]);
    }

    #[test]
    fn canonicalize_by_keeps_first_by_key() {
        // Reddit-style: keep the chronologically-first edge.
        let list = EdgeList::from_vec(vec![(2u64, 1u64, 50u64), (1, 2, 10), (1, 2, 99)])
            .canonicalize_by(|t| *t);
        assert_eq!(list.as_slice(), &[(1, 2, 10)]);
    }

    #[test]
    fn stride_partitions_cover_all_edges() {
        let list = EdgeList::from_vec((0..10u64).map(|i| (i, i + 1, i)).collect::<Vec<_>>());
        let nranks = 3;
        let mut all: Vec<_> = (0..nranks)
            .flat_map(|r| list.stride_for_rank(r, nranks))
            .collect();
        all.sort();
        assert_eq!(all.len(), 10);
        assert_eq!(all, list.into_vec());
    }

    #[test]
    fn vertex_count() {
        let list = EdgeList::from_vec(vec![(5u64, 9u64, ()), (9, 7, ()), (5, 9, ())]);
        assert_eq!(list.vertex_count(), 3);
    }

    #[test]
    fn empty_list() {
        let list: EdgeList<()> = EdgeList::new().canonicalize();
        assert!(list.is_empty());
        assert_eq!(list.vertex_count(), 0);
    }
}
